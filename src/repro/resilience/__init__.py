"""Resilience subsystem: failure injection, page checkpoints, rank recovery.

Three cooperating pieces make platform runs elastic under rank failure:

* :mod:`~repro.resilience.faults` — seeded, deterministic
  :class:`FaultPlan` schedules (kill a rank at a refresh epoch,
  delay/drop/corrupt a page reply) honored by every execution backend's
  fault points;
* :mod:`~repro.resilience.checkpoint` — the woven
  :class:`CheckpointAspect` snapshots each rank's owned pages after
  every successful refresh into a pluggable store (in-memory or
  spooled to disk) and restores/fast-forwards on restart;
* :mod:`~repro.resilience.recovery` — the :class:`RecoveryManager`
  diagnoses which ranks actually died, re-partitions their blocks onto
  the survivors (cost-model-driven, :mod:`~repro.resilience.rebalance`)
  and re-runs the program from the last complete checkpoint epoch.

Enable it per Platform::

    policy = ResiliencePolicy(fault_plan=FaultPlan().kill(2, epoch=3))
    platform = (Platform.builder()
                .mpi(4, backend="process").mmat()
                .resilience(policy)
                .build())
"""

from .checkpoint import (
    CheckpointAspect,
    CheckpointStore,
    DiskCheckpointStore,
    MemoryCheckpointStore,
)
from .faults import CORRUPT_REPLY, DELAY_REPLY, DROP_REPLY, KILL, Fault, FaultPlan
from .rebalance import merge_rank_counters, plan_recovery_ownership
from .recovery import (
    RecoveryEvent,
    RecoveryManager,
    ResiliencePolicy,
    diagnose_dead_ranks,
)

__all__ = [
    "CORRUPT_REPLY",
    "CheckpointAspect",
    "CheckpointStore",
    "DELAY_REPLY",
    "DROP_REPLY",
    "DiskCheckpointStore",
    "Fault",
    "FaultPlan",
    "KILL",
    "MemoryCheckpointStore",
    "RecoveryEvent",
    "RecoveryManager",
    "ResiliencePolicy",
    "diagnose_dead_ranks",
    "merge_rank_counters",
    "plan_recovery_ownership",
]
