"""Observability subsystem: span tracing, metrics, and trace exporters.

Everything the run-total counters of :mod:`repro.runtime.tracing`
cannot answer — *when* did each rank wait, how long was each halo
exchange in flight, which step recomputed — is recorded here as spans
and metrics, exported as Chrome trace-event JSON (Perfetto-loadable)
or a plain-text phase report.

Off by default; enabled per run via ``Platform(tracing=True)``,
``Platform.builder().tracing()``, ``preset(..., tracing=True)`` or the
``REPRO_TRACE=1`` environment variable.  The disabled path is a single
flag check per instrumentation site (gated by ``benchmarks/bench_obs.py``).
"""

from .aspect import MonitoringAspect
from .export import (
    chrome_trace_document,
    format_ns,
    phase_report,
    save_chrome_trace,
    validate_chrome_trace,
    widest_spans,
)
from .metrics import Histogram, MetricsRegistry, global_metrics
from .spans import (
    DEFAULT_CAPACITY,
    SpanBuffer,
    Tracer,
    env_tracing_default,
    global_tracer,
    set_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "MonitoringAspect",
    "Tracer",
    "SpanBuffer",
    "Histogram",
    "MetricsRegistry",
    "global_tracer",
    "global_metrics",
    "span",
    "tracing_enabled",
    "set_tracing",
    "env_tracing_default",
    "chrome_trace_document",
    "save_chrome_trace",
    "validate_chrome_trace",
    "phase_report",
    "widest_spans",
    "format_ns",
    "DEFAULT_CAPACITY",
]
