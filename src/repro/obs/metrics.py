"""Metrics registry: per-rank counters and streaming histograms.

Where :mod:`repro.runtime.tracing` counts platform-defined quantities
in a fixed dataclass, this registry accepts *named* measurements from
anywhere in the stack — ``halo.wait_ns`` observations, ``exchange.pages``
per aggregated exchange — and summarises their distribution (count,
sum, min/max, p50/p95/p99) per rank and overall.

Histograms are streaming: an exact count/sum/min/max plus a bounded
reservoir of samples for the percentiles, so recording stays O(1) in
memory on arbitrarily long runs.  State is picklable and mergeable,
which is how rank processes ship their measurements back over the
process backend's result channel.

Like the span tracer, call sites guard on :func:`repro.obs.spans.Tracer.enabled`
(or use the convenience helpers here, which check it for them), so a
run without tracing pays one flag check per site.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Tuple

from ..runtime.task import current_task
from .spans import global_tracer

__all__ = ["Histogram", "MetricsRegistry", "global_metrics", "record", "count"]

#: Samples kept per histogram for percentile estimation.  Smoke runs
#: stay far below this (percentiles are then exact); long runs degrade
#: gracefully to a uniform reservoir.
RESERVOIR_SIZE = 4096


class Histogram:
    """Streaming distribution summary: exact moments + sample reservoir."""

    __slots__ = ("count", "total", "min", "max", "_samples", "_rng")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        # Deterministic reservoir so repeated runs of the test-suite
        # summarise identical inputs identically.
        self._rng = random.Random(0x5EED)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < RESERVOIR_SIZE:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self._samples[slot] = value

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile (``p`` in [0, 100]) of the reservoir."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        pos = (p / 100.0) * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for value in other._samples:
            if len(self._samples) < RESERVOIR_SIZE:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < RESERVOIR_SIZE:
                    self._samples[slot] = value

    def stats(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Thread-safe store of named per-rank histograms and counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hists: Dict[Tuple[str, int], Histogram] = {}
        self._counters: Dict[Tuple[str, int], float] = {}

    # -- recording ------------------------------------------------------
    def record(self, name: str, value: float, rank: Optional[int] = None) -> None:
        """Add one observation to histogram ``name`` on ``rank`` (default: current)."""
        if rank is None:
            rank = current_task().mpi_rank
        key = (name, rank)
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = Histogram()
                self._hists[key] = hist
            hist.record(value)

    def count(self, name: str, delta: float = 1, rank: Optional[int] = None) -> None:
        """Increment counter ``name`` on ``rank`` (default: current)."""
        if rank is None:
            rank = current_task().mpi_rank
        key = (name, rank)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + delta

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        with self._lock:
            self._hists.clear()
            self._counters.clear()

    # -- snapshot / merge -----------------------------------------------
    def export_state(self) -> dict:
        """Picklable state for the process-backend result channel."""
        with self._lock:
            return {
                "histograms": {
                    key: {
                        "count": h.count,
                        "sum": h.total,
                        "min": h.min,
                        "max": h.max,
                        "samples": list(h._samples),
                    }
                    for key, h in self._hists.items()
                },
                "counters": dict(self._counters),
            }

    def merge_state(self, state: dict) -> None:
        """Fold another registry's :meth:`export_state` in (rank results)."""
        with self._lock:
            for key, data in state.get("histograms", {}).items():
                key = (key[0], key[1])
                hist = self._hists.get(key)
                if hist is None:
                    hist = Histogram()
                    self._hists[key] = hist
                other = Histogram()
                other.count = data["count"]
                other.total = data["sum"]
                other.min = data["min"]
                other.max = data["max"]
                other._samples = list(data["samples"])
                hist.merge(other)
            for key, value in state.get("counters", {}).items():
                key = (key[0], key[1])
                self._counters[key] = self._counters.get(key, 0) + value

    def snapshot(self) -> dict:
        """Summary of every metric: overall stats plus a per-rank breakdown.

        Shape::

            {"histograms": {name: {"all": {...stats...},
                                   "per_rank": {rank: {...stats...}}}},
             "counters":   {name: {"all": total,
                                   "per_rank": {rank: value}}}}
        """
        with self._lock:
            hist_items = list(self._hists.items())
            counter_items = list(self._counters.items())
        histograms: Dict[str, dict] = {}
        for (name, rank), hist in hist_items:
            entry = histograms.setdefault(name, {"all": Histogram(), "per_rank": {}})
            entry["all"].merge(hist)
            entry["per_rank"][rank] = hist.stats()
        counters: Dict[str, dict] = {}
        for (name, rank), value in counter_items:
            entry = counters.setdefault(name, {"all": 0, "per_rank": {}})
            entry["all"] += value
            entry["per_rank"][rank] = value
        return {
            "histograms": {
                name: {"all": e["all"].stats(), "per_rank": e["per_rank"]}
                for name, e in histograms.items()
            },
            "counters": counters,
        }


#: Process-wide registry, reset alongside the span tracer per traced run.
_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """Return the process-wide metrics registry."""
    return _GLOBAL


def record(name: str, value: float, rank: Optional[int] = None) -> None:
    """Record an observation iff tracing is enabled (single flag check)."""
    if global_tracer().enabled:
        _GLOBAL.record(name, value, rank)


def count(name: str, delta: float = 1, rank: Optional[int] = None) -> None:
    """Increment a counter iff tracing is enabled (single flag check)."""
    if global_tracer().enabled:
        _GLOBAL.count(name, delta, rank)
