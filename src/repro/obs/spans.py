"""Low-overhead span tracer: per-task ring buffers of timed phases.

The paper's whole argument is about *where* a Python HPC platform
spends its time; the run-total counters of
:mod:`repro.runtime.tracing` can say how much was waited on, but not
*when*, *by which rank*, or *in which step*.  This module records the
missing dimension: **spans** — named, timestamped intervals, one ring
buffer per task (rank, thread) — cheap enough to leave compiled in
everywhere, and off by default.

Design constraints (mirrored by the tracing-overhead gate in
``benchmarks/bench_obs.py``):

* **Disabled path is one flag check.**  :meth:`Tracer.span` returns a
  shared no-op context manager when tracing is off; no buffer lookup,
  no clock read, no allocation beyond the call itself.
* **Recording is allocation-light.**  Events are stored as tuples in a
  bounded ``deque`` per task; overflow drops the *oldest* events and
  counts the drop (never silently).
* **Cross-process mergeable.**  Timestamps are ``perf_counter_ns``
  readings plus a per-buffer wall-clock anchor, so buffers recorded in
  forked rank processes align with the parent's on one timeline (same
  host ⇒ same wall clock) when shipped back over the result channel.

Synchronous phases use the context manager::

    with tracer.span("sweep.interior", block=3):
        ...

Asynchronous phases — e.g. the overlapped halo exchange, issued after
the step barrier and completed mid-sweep — use the explicit begin/end
pair, which may fire on different threads of the same rank::

    token = tracer.async_begin("halo.flight", pages=12)
    ...
    tracer.async_end(token)
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..runtime.task import current_task

__all__ = [
    "Tracer",
    "SpanBuffer",
    "global_tracer",
    "span",
    "tracing_enabled",
    "set_tracing",
    "DEFAULT_CAPACITY",
]

#: Ring-buffer capacity per task.  65k events absorb thousands of steps
#: of the platform's per-step span rate; beyond that the oldest events
#: are dropped (and counted), keeping memory bounded on long runs.
DEFAULT_CAPACITY = 65536

#: Environment variable enabling tracing without touching code
#: (``REPRO_TRACE=1``); read once at import, consulted by
#: ``Platform(tracing=None)``.
TRACE_ENV_VAR = "REPRO_TRACE"


def env_tracing_default() -> bool:
    """Whether ``REPRO_TRACE`` asks for tracing (``1``/``true``/``yes``/``on``)."""
    return os.environ.get(TRACE_ENV_VAR, "").strip().lower() in (
        "1", "true", "yes", "on"
    )


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Thread identifier of the simulated-runtime task threads is the OMP
#: thread index (an int); auxiliary threads (e.g. the process backend's
#: receiver) use a string label instead.
ThreadId = Union[int, str]


class SpanBuffer:
    """Ring buffer of one task's span events (one per (rank, thread))."""

    __slots__ = ("rank", "thread", "events", "stack", "epoch_offset_ns", "dropped")

    def __init__(self, rank: int, thread: ThreadId, capacity: int) -> None:
        self.rank = rank
        self.thread = thread
        self.events: deque = deque(maxlen=capacity)
        #: Names of the currently-open synchronous spans on this task,
        #: innermost last — recorded into each event as its flamegraph
        #: path (``"processing;sweep.interior"``).
        self.stack: List[str] = []
        #: Wall-clock anchor: adding this to a ``perf_counter_ns``
        #: reading yields an epoch-based nanosecond timestamp, which is
        #: what makes buffers from different processes line up.
        self.epoch_offset_ns = time.time_ns() - time.perf_counter_ns()
        self.dropped = 0

    def append(self, event: tuple) -> None:
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(event)


class _Span:
    """One live synchronous span (context manager)."""

    __slots__ = ("_buffer", "_name", "_attrs", "_t0")

    def __init__(self, buffer: SpanBuffer, name: str, attrs: Optional[dict]) -> None:
        self._buffer = buffer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._buffer.stack.append(self._name)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> None:
        t1 = time.perf_counter_ns()
        buffer = self._buffer
        path = ";".join(buffer.stack)
        buffer.stack.pop()
        buffer.append(("X", self._name, path, self._t0, t1 - self._t0, self._attrs))


class Tracer:
    """Thread-safe registry of per-task span buffers for one process.

    The tracer is *disabled* by default: every :meth:`span` /
    :meth:`async_begin` call then reduces to one attribute check.  The
    Platform driver enables it for the duration of a traced run and
    snapshots the buffers into the :class:`~repro.annotation.driver.PlatformRun`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.enabled = False
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._buffers: Dict[Tuple[int, ThreadId], SpanBuffer] = {}
        #: Events merged in from other processes (already dict-shaped,
        #: epoch-aligned); appended by :meth:`merge_events`.
        self._merged: List[dict] = []
        self._async_ids = itertools.count(1)

    # -- lifecycle ------------------------------------------------------
    def set_enabled(self, enabled: bool) -> None:
        self.enabled = bool(enabled)

    def reset(self) -> None:
        """Drop every buffer and merged event (start of a traced run)."""
        with self._lock:
            self._buffers.clear()
            self._merged.clear()

    # -- recording ------------------------------------------------------
    def buffer_for(
        self, rank: Optional[int] = None, thread: Optional[ThreadId] = None
    ) -> SpanBuffer:
        """The (creating if needed) buffer of ``(rank, thread)``.

        Defaults come from the calling thread's task context, so span
        call sites never need to know which rank they run on.
        """
        if rank is None or thread is None:
            task = current_task()
            if rank is None:
                rank = task.mpi_rank
            if thread is None:
                thread = task.omp_thread
        key = (rank, thread)
        buffer = self._buffers.get(key)
        if buffer is None:
            with self._lock:
                buffer = self._buffers.get(key)
                if buffer is None:
                    buffer = SpanBuffer(rank, thread, self.capacity)
                    self._buffers[key] = buffer
        return buffer

    def span(self, name: str, **attrs: Any):
        """Context manager timing a synchronous phase on the current task."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self.buffer_for(), name, attrs or None)

    def span_at(self, name: str, rank: int, thread: ThreadId, **attrs: Any):
        """Like :meth:`span`, but on an explicit (rank, thread) track.

        For threads with no task context of their own — e.g. the process
        backend's receiver thread, whose serve spans belong on its
        rank's ``"recv"`` track, not on the defaulted serial task.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self.buffer_for(rank, thread), name, attrs or None)

    def async_begin(
        self,
        name: str,
        *,
        rank: Optional[int] = None,
        thread: Optional[ThreadId] = None,
        **attrs: Any,
    ) -> Optional[tuple]:
        """Open an asynchronous span; returns the token :meth:`async_end` takes.

        Returns ``None`` while tracing is disabled, and ``async_end``
        accepts ``None`` — call sites need no extra flag check.
        """
        if not self.enabled:
            return None
        buffer = self.buffer_for(rank, thread)
        span_id = next(self._async_ids)
        buffer.append(("b", name, span_id, time.perf_counter_ns(), attrs or None))
        return (name, span_id, buffer.rank)

    def async_end(self, token: Optional[tuple], **attrs: Any) -> None:
        """Close an asynchronous span (no-op for a ``None`` token).

        The end event is recorded on the *issuing rank's* timeline even
        when completed from another thread, so begin/end always pair on
        one process track.
        """
        if token is None or not self.enabled:
            return
        name, span_id, rank = token
        buffer = self.buffer_for(rank, None)
        buffer.append(("e", name, span_id, time.perf_counter_ns(), attrs or None))

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration marker event on the current task."""
        if not self.enabled:
            return
        buffer = self.buffer_for()
        buffer.append(("X", name, name, time.perf_counter_ns(), 0, attrs or None))

    # -- snapshot / merge -----------------------------------------------
    def snapshot(self) -> List[dict]:
        """Every recorded event as an epoch-aligned dict (pickle-safe).

        Keys: ``ph`` (``"X"`` complete | ``"b"``/``"e"`` async),
        ``name``, ``ts_ns`` (epoch ns), ``rank``, ``thread``, ``args``;
        ``X`` events add ``dur_ns`` and the flamegraph ``path``, async
        events add the pairing ``id``.
        """
        with self._lock:
            buffers = list(self._buffers.values())
            merged = list(self._merged)
        out: List[dict] = []
        for buffer in buffers:
            offset = buffer.epoch_offset_ns
            rank, thread = buffer.rank, buffer.thread
            for event in list(buffer.events):
                if event[0] == "X":
                    _, name, path, t0, dur, attrs = event
                    out.append({
                        "ph": "X", "name": name, "path": path,
                        "ts_ns": t0 + offset, "dur_ns": dur,
                        "rank": rank, "thread": thread, "args": attrs,
                    })
                else:
                    ph, name, span_id, t0, attrs = event
                    out.append({
                        "ph": ph, "name": name, "id": span_id,
                        "ts_ns": t0 + offset,
                        "rank": rank, "thread": thread, "args": attrs,
                    })
        out.extend(merged)
        out.sort(key=lambda e: e["ts_ns"])
        return out

    def merge_events(self, events: Iterable[dict]) -> None:
        """Fold another process's snapshot in (process-backend ranks)."""
        events = list(events)
        if not events:
            return
        with self._lock:
            self._merged.extend(events)

    def dropped_events(self) -> int:
        """Total events dropped to ring-buffer overflow across all tasks."""
        with self._lock:
            return sum(b.dropped for b in self._buffers.values())


#: Process-wide tracer.  The Platform driver enables/resets it around
#: traced runs; forked rank processes inherit the enabled flag and ship
#: their buffers back over the result channel.
_GLOBAL = Tracer()


def global_tracer() -> Tracer:
    """Return the process-wide span tracer."""
    return _GLOBAL


def span(name: str, **attrs: Any):
    """Module-level shorthand for ``global_tracer().span(...)``."""
    tracer = _GLOBAL
    if not tracer.enabled:
        return _NULL_SPAN
    return _Span(tracer.buffer_for(), name, attrs or None)


def tracing_enabled() -> bool:
    """Whether the process-wide tracer is currently recording."""
    return _GLOBAL.enabled


def set_tracing(enabled: bool) -> None:
    """Enable/disable the process-wide tracer (the Platform does this per run)."""
    _GLOBAL.set_enabled(enabled)
