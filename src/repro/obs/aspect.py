"""MonitoringAspect: phase spans woven through the platform's own AOP core.

ANTAREX's thesis — separation of *monitoring* concerns from application
code via aspects — is exactly the shape this platform already has, so
the observability layer dogfoods it: the phase timeline is produced by
an ordinary :class:`~repro.aop.aspect.Aspect` woven alongside the
layer modules, not by edits to application code.

The aspect has the lowest ``order`` in the stack (outermost), so its
phase spans *contain* everything the layer aspects add: a ``refresh``
span covers the barrier, the allreduce and the halo exchange the
distributed-memory module wraps around ``Env.refresh``.  Sites no
advice can reach (block-kernel sweeps, the comm receiver thread, the
weaver itself) are instrumented with direct hooks instead; see
``ISSUE``/README for the inventory.
"""

from __future__ import annotations

import time

from ..aop.advice import around
from ..aop.aspect import Aspect
from .metrics import record
from .spans import global_tracer

__all__ = ["MonitoringAspect"]


class MonitoringAspect(Aspect):
    """Record phase spans around the platform join points.

    Appended automatically by ``Platform(..., tracing=True)``; harmless
    (single flag check per join point) if woven while tracing is off.
    """

    order = 1  # outermost: phase spans contain the layer aspects' work

    @around("tagged('platform.initialize')")
    def time_initialize(self, jp):
        with global_tracer().span("phase.initialize"):
            return jp.proceed()

    @around("tagged('platform.processing')")
    def time_processing(self, jp):
        with global_tracer().span("phase.processing"):
            return jp.proceed()

    @around("tagged('platform.finalize')")
    def time_finalize(self, jp):
        with global_tracer().span("phase.finalize"):
            return jp.proceed()

    @around("tagged('memory.refresh')")
    def time_refresh(self, jp):
        # Warm-up refreshes (MMAT search passes) are a distinct phase in
        # the paper's cost story; apps call ``env.refresh(warmup)``.
        warmup = jp.args[0] if jp.args else jp.kwargs.get("warmup", False)
        tracer = global_tracer()
        if not tracer.enabled:
            return jp.proceed()
        name = "refresh.warmup" if warmup else "refresh"
        t0 = time.perf_counter_ns()
        with tracer.span(name):
            result = jp.proceed()
        record(name + ".ns", time.perf_counter_ns() - t0)
        return result

    @around("tagged('memory.get_blocks')")
    def time_get_blocks(self, jp):
        with global_tracer().span("memory.get_blocks"):
            return jp.proceed()
