"""Exporters for recorded spans: Chrome trace JSON and text reports.

Two consumers, two formats:

* :func:`chrome_trace_document` — the Chrome trace-event JSON format
  (the ``{"traceEvents": [...]}`` object form), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  One process track
  per rank, one thread track per (rank, thread); synchronous spans are
  complete (``ph: "X"``) events, asynchronous halo flights are
  ``"b"``/``"e"`` pairs that Perfetto draws as arrows from issue to
  completion.
* :func:`phase_report` — a plain-text flamegraph-style table that
  aggregates spans by their call path, for terminals without a trace
  viewer at hand.

:func:`validate_chrome_trace` checks a document against the subset of
the trace-event schema we rely on; both the test-suite and the CI
perf-gate run it on freshly produced traces.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "chrome_trace_document",
    "save_chrome_trace",
    "validate_chrome_trace",
    "phase_report",
    "widest_spans",
    "format_ns",
]


def _thread_sort_key(thread: Union[int, str]) -> tuple:
    # Integer OMP thread ids first in numeric order, then named
    # auxiliary threads ("recv", ...) alphabetically.
    if isinstance(thread, int):
        return (0, thread, "")
    return (1, 0, str(thread))


def _tid_map(events: List[dict]) -> Dict[Tuple[int, Union[int, str]], int]:
    """Stable (rank, thread) → integer tid mapping.

    OMP worker threads keep their index; named threads (the process
    backend's receiver) get tids from 100 up so they sort below the
    workers in trace viewers.
    """
    threads: Dict[int, set] = defaultdict(set)
    for event in events:
        threads[event["rank"]].add(event["thread"])
    mapping: Dict[Tuple[int, Union[int, str]], int] = {}
    for rank, names in threads.items():
        aux = 100
        for thread in sorted(names, key=_thread_sort_key):
            if isinstance(thread, int):
                mapping[(rank, thread)] = thread
            else:
                mapping[(rank, thread)] = aux
                aux += 1
    return mapping


def _category(name: str) -> str:
    return name.split(".", 1)[0]


def chrome_trace_document(events: List[dict], *, metadata: Optional[dict] = None) -> dict:
    """Convert a :meth:`Tracer.snapshot` event list to a Chrome trace document.

    Timestamps are normalised so the earliest event sits at ts=0 and
    converted to the microseconds the format mandates; durations are
    clamped non-negative (a clock hiccup must not render as a
    billion-year span).
    """
    tids = _tid_map(events)
    t0 = min((e["ts_ns"] for e in events), default=0)
    trace_events: List[dict] = []

    # Metadata events name the per-rank process tracks and per-thread
    # thread tracks so Perfetto shows "rank 0 / omp 1" instead of bare ids.
    ranks = sorted({e["rank"] for e in events})
    for rank in ranks:
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": rank, "tid": 0,
            "args": {"name": "rank %d" % rank},
        })
    for (rank, thread), tid in sorted(tids.items(), key=lambda kv: (kv[0][0], kv[1])):
        label = ("omp %d" % thread) if isinstance(thread, int) else str(thread)
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": rank, "tid": tid,
            "args": {"name": label},
        })

    for event in events:
        pid = event["rank"]
        tid = tids[(pid, event["thread"])]
        ts_us = (event["ts_ns"] - t0) / 1000.0
        name = event["name"]
        common = {
            "name": name,
            "cat": _category(name),
            "ts": ts_us,
            "pid": pid,
            "tid": tid,
        }
        if event["args"]:
            common["args"] = dict(event["args"])
        if event["ph"] == "X":
            common["ph"] = "X"
            common["dur"] = max(event["dur_ns"], 0) / 1000.0
        else:
            common["ph"] = event["ph"]
            common["id"] = event["id"]
        trace_events.append(common)

    doc = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {"tool": "repro.obs", **(metadata or {})},
    }
    return doc


def save_chrome_trace(path: str, events: List[dict], *, metadata: Optional[dict] = None) -> str:
    """Write the Chrome trace document for ``events`` to ``path``; returns ``path``."""
    doc = chrome_trace_document(events, metadata=metadata)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return path


def validate_chrome_trace(doc: dict) -> List[str]:
    """Check ``doc`` against the trace-event schema subset we emit.

    Returns a list of problems (empty ⇒ valid): every event needs
    ``ph``/``pid``/``tid``; complete events need numeric non-negative
    ``ts``/``dur``; async events need ``id`` + ``cat`` and must pair a
    begin with an end (same cat/id/pid) with ``end.ts >= begin.ts``.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    async_begins: Dict[tuple, float] = {}
    async_ends: Dict[tuple, float] = {}
    for i, event in enumerate(events):
        where = "event %d" % i
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        ph = event.get("ph")
        if ph not in ("X", "b", "e", "M"):
            problems.append("%s: unsupported ph %r" % (where, ph))
            continue
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append("%s (%s): %s not an int" % (where, ph, field))
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append("%s (%s %r): ts not numeric" % (where, ph, event.get("name")))
            continue
        if ts < 0:
            problems.append("%s (%s %r): negative ts" % (where, ph, event.get("name")))
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append("%s (X %r): dur not numeric" % (where, event.get("name")))
            elif dur < 0:
                problems.append("%s (X %r): negative dur" % (where, event.get("name")))
        else:
            if "id" not in event:
                problems.append("%s (%s %r): async event without id" % (where, ph, event.get("name")))
                continue
            if "cat" not in event:
                problems.append("%s (%s %r): async event without cat" % (where, ph, event.get("name")))
                continue
            key = (event["cat"], event["id"], event["pid"])
            if ph == "b":
                if key in async_begins:
                    problems.append("%s: duplicate async begin %r" % (where, key))
                async_begins[key] = ts
            else:
                if key in async_ends:
                    problems.append("%s: duplicate async end %r" % (where, key))
                async_ends[key] = ts
    for key, ts in async_begins.items():
        if key not in async_ends:
            problems.append("async begin %r has no matching end" % (key,))
        elif async_ends[key] < ts:
            problems.append("async span %r ends before it begins" % (key,))
    for key in async_ends:
        if key not in async_begins:
            problems.append("async end %r has no matching begin" % (key,))
    return problems


def format_ns(ns: float) -> str:
    """Human duration: 1234567 → '1.23ms'."""
    ns = float(ns)
    if ns >= 1e9:
        return "%.2fs" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2fms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.1fus" % (ns / 1e3)
    return "%dns" % int(ns)


def phase_report(events: List[dict], *, limit: Optional[int] = None) -> str:
    """Flamegraph-style text table aggregating spans by call path.

    Sibling phases are ordered by total time, children indented under
    their parents; the ``%wall`` column is relative to the overall
    traced window, so overlapping ranks legitimately sum past 100%.
    ``limit`` keeps only the first N rows (the quickstart prints 3).
    """
    spans = [e for e in events if e["ph"] == "X"]
    if not spans:
        return "phase report: no spans recorded"
    totals: Dict[str, List[float]] = {}
    for s in spans:
        path = s.get("path") or s["name"]
        entry = totals.setdefault(path, [0, 0.0])
        entry[0] += 1
        entry[1] += max(s["dur_ns"], 0)
    wall_ns = max(e["ts_ns"] + e.get("dur_ns", 0) for e in spans) - min(
        e["ts_ns"] for e in spans
    )
    wall_ns = max(wall_ns, 1)

    # Depth-first emission: under each parent path, children sorted by
    # total time descending — the classic collapsed-stack ordering.
    children: Dict[str, List[str]] = defaultdict(list)
    roots: List[str] = []
    for path in totals:
        parent = path.rsplit(";", 1)[0] if ";" in path else None
        if parent is not None and parent in totals:
            children[parent].append(path)
        else:
            roots.append(path)

    rows: List[Tuple[int, str, int, float]] = []

    def emit(path: str, depth: int) -> None:
        count, total = totals[path]
        rows.append((depth, path.rsplit(";", 1)[-1], count, total))
        for child in sorted(children[path], key=lambda p: -totals[p][1]):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda p: -totals[p][1]):
        emit(root, 0 if ";" not in root else root.count(";"))
    if limit is not None:
        rows = rows[:limit]

    name_width = max(len("phase"), max(2 * d + len(n) for d, n, _, _ in rows))
    lines = [
        "%-*s %8s %10s %10s %7s"
        % (name_width, "phase", "count", "total", "mean", "%wall")
    ]
    for depth, name, count, total in rows:
        label = "  " * depth + name
        lines.append(
            "%-*s %8d %10s %10s %6.1f%%"
            % (
                name_width,
                label,
                count,
                format_ns(total),
                format_ns(total / count if count else 0),
                100.0 * total / wall_ns,
            )
        )
    return "\n".join(lines)


def widest_spans(events: List[dict], n: int = 5) -> Dict[int, List[dict]]:
    """Top-``n`` longest complete spans per rank (duration descending)."""
    per_rank: Dict[int, List[dict]] = defaultdict(list)
    for event in events:
        if event["ph"] == "X":
            per_rank[event["rank"]].append(event)
    return {
        rank: sorted(spans, key=lambda s: -s["dur_ns"])[:n]
        for rank, spans in sorted(per_rank.items())
    }
