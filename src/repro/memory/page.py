"""Pages: the granularity at which the platform manages and moves data.

The Memory Library exposes two interfaces (§III-B6):

* the **Block-based interface** used by end-user kernels (Global/Local
  address get/set), and
* the **Page-based interface** used by the aspect modules to manage
  validity/dirtiness and to communicate data between tasks
  page-by-page rather than block-by-block.

A :class:`Page` owns one chunk from a memory pool holding a fixed
number of *elements* (an element being whatever the DSL defines: one
grid point value, one unstructured cell record, one particle bucket).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .errors import BlockError
from .pool import Chunk, PoolGroup

__all__ = ["Page", "PageKey"]


class PageKey(tuple):
    """Hashable identifier of a page: ``(block_id, buffer_index, page_index)``.

    Aspect modules exchange :class:`PageKey` lists when negotiating
    which pages to transfer (the "list of non-existent pages" in
    AspectType III).
    """

    __slots__ = ()

    def __new__(cls, block_id: int, page_index: int) -> "PageKey":
        return super().__new__(cls, (int(block_id), int(page_index)))

    @property
    def block_id(self) -> int:
        return self[0]

    @property
    def page_index(self) -> int:
        return self[1]

    def __repr__(self) -> str:
        return f"PageKey(block={self[0]}, page={self[1]})"


class Page:
    """A fixed-size run of elements backed by one memory-pool chunk."""

    __slots__ = ("index", "elements", "components", "dtype", "chunk", "_view", "valid", "dirty")

    def __init__(
        self,
        index: int,
        elements: int,
        components: int,
        dtype,
        allocator: PoolGroup,
    ) -> None:
        if elements <= 0 or components <= 0:
            raise BlockError("page must hold a positive number of elements/components")
        self.index = int(index)
        self.elements = int(elements)
        self.components = int(components)
        self.dtype = np.dtype(dtype)
        nbytes = self.elements * self.components * self.dtype.itemsize
        self.chunk: Chunk = allocator.allocate(nbytes)
        view = self.chunk.as_array(self.dtype, self.elements * self.components)
        self._view = view.reshape(self.elements, self.components)
        #: Whether the page currently holds meaningful data (Buffer-only
        #: Blocks start with every page invalid until communication fills it).
        self.valid: bool = True
        #: Whether the page has been written since the last buffer swap;
        #: aspect modules only transfer dirty pages.
        self.dirty: bool = False

    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The ``(elements, components)`` numpy view over the page's chunk."""
        return self._view

    @property
    def nbytes(self) -> int:
        return self.chunk.size

    def read(self, slot: int) -> np.ndarray:
        """Return the component vector of element ``slot`` (no copy)."""
        return self._view[slot]

    def write(self, slot: int, value) -> None:
        """Store ``value`` into element ``slot`` and mark the page dirty."""
        self._view[slot] = value
        self.dirty = True

    def fill_from(self, data: np.ndarray, *, valid: bool = True) -> None:
        """Overwrite the whole page (used by the communication advice)."""
        data = np.asarray(data, dtype=self.dtype).reshape(self.elements, self.components)
        self._view[...] = data
        self.valid = valid
        self.dirty = False

    def snapshot(self) -> np.ndarray:
        """Return a copy of the page contents (what gets sent over the network)."""
        return self._view.copy()

    def release(self) -> None:
        """Return the backing chunk to its pool."""
        if not self.chunk.freed:
            self.chunk.free()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Page(index={self.index}, elements={self.elements}, "
            f"valid={self.valid}, dirty={self.dirty})"
        )
