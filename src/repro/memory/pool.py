"""Fixed-size memory pools and chunks.

The platform "allocates a fixed-size memory (Memory Pool), and the data
for the computation domain is placed on it" (§III-B6).  Buffers of Data
Blocks are built from *chunks* obtained from one or more pools, which
lets the same interface cover non-uniform memory layers or
memory-mapped files.

This Python port backs every pool with a single ``numpy`` byte array
and hands out :class:`Chunk` views into it.  A simple first-fit free
list with coalescing keeps the implementation understandable while
still exhibiting the behaviour that matters for the paper's Fig. 12
(memory-usage accounting split into *unused pool*, *used pool* and
*working memory*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .errors import PoolCorruptionError, PoolExhaustedError

__all__ = ["Chunk", "MemoryPool", "PoolGroup", "PoolStats"]

_ALIGNMENT = 8


def _align_up(value: int, alignment: int = _ALIGNMENT) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class PoolStats:
    """Snapshot of a pool's occupancy (consumed by the Fig. 12 bench)."""

    capacity_bytes: int
    used_bytes: int
    free_bytes: int
    peak_bytes: int
    allocations: int
    frees: int

    @property
    def utilisation(self) -> float:
        if self.capacity_bytes == 0:
            return 0.0
        return self.used_bytes / self.capacity_bytes


class Chunk:
    """A contiguous byte range inside a :class:`MemoryPool`."""

    __slots__ = ("pool", "offset", "size", "_freed")

    def __init__(self, pool: "MemoryPool", offset: int, size: int) -> None:
        self.pool = pool
        self.offset = offset
        self.size = size
        self._freed = False

    # ------------------------------------------------------------------
    @property
    def freed(self) -> bool:
        return self._freed

    def as_array(self, dtype=np.float64, count: Optional[int] = None) -> np.ndarray:
        """Return a numpy view of the chunk's bytes with the given dtype."""
        if self._freed:
            raise PoolCorruptionError("cannot view a freed chunk")
        itemsize = np.dtype(dtype).itemsize
        max_count = self.size // itemsize
        if count is None:
            count = max_count
        if count > max_count:
            raise PoolCorruptionError(
                f"requested {count} items of {dtype} but chunk holds only {max_count}"
            )
        start = self.offset
        return self.pool._backing[start : start + count * itemsize].view(dtype)

    def free(self) -> None:
        """Return the chunk to its pool."""
        self.pool.free(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Chunk(pool={self.pool.name!r}, offset={self.offset}, size={self.size})"


class MemoryPool:
    """Fixed-capacity allocator handing out :class:`Chunk` objects.

    Parameters
    ----------
    capacity_bytes:
        Total pool size; never grows (matching the paper's fixed-size
        Memory Pool whose unused remainder shows up in Fig. 12).
    name:
        Label used in memory reports (e.g. ``"node0"``, ``"mmap"``).
    """

    def __init__(self, capacity_bytes: int, *, name: str = "pool") -> None:
        if capacity_bytes <= 0:
            raise ValueError("pool capacity must be positive")
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self._backing = np.zeros(self.capacity_bytes, dtype=np.uint8)
        # Free list of (offset, size), kept sorted by offset and coalesced.
        self._free_list: List[Tuple[int, int]] = [(0, self.capacity_bytes)]
        self._live_chunks: Dict[int, Chunk] = {}
        self._used_bytes = 0
        self._peak_bytes = 0
        self._allocations = 0
        self._frees = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    def stats(self) -> PoolStats:
        """Return an occupancy snapshot."""
        return PoolStats(
            capacity_bytes=self.capacity_bytes,
            used_bytes=self._used_bytes,
            free_bytes=self.free_bytes,
            peak_bytes=self._peak_bytes,
            allocations=self._allocations,
            frees=self._frees,
        )

    # ------------------------------------------------------------------
    def allocate(self, nbytes: int) -> Chunk:
        """Allocate ``nbytes`` (rounded up to the pool alignment).

        Raises :class:`PoolExhaustedError` when no free range is large
        enough — the platform treats this as a configuration error (the
        DSL declared a pool too small for the Env it builds).
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        size = _align_up(int(nbytes))
        for index, (offset, free_size) in enumerate(self._free_list):
            if free_size >= size:
                remaining = free_size - size
                if remaining:
                    self._free_list[index] = (offset + size, remaining)
                else:
                    del self._free_list[index]
                chunk = Chunk(self, offset, size)
                self._live_chunks[offset] = chunk
                self._used_bytes += size
                self._peak_bytes = max(self._peak_bytes, self._used_bytes)
                self._allocations += 1
                return chunk
        raise PoolExhaustedError(
            f"pool {self.name!r} cannot allocate {size} bytes "
            f"(free={self.free_bytes}, capacity={self.capacity_bytes})"
        )

    def free(self, chunk: Chunk) -> None:
        """Return ``chunk`` to the free list (coalescing neighbours)."""
        if chunk.pool is not self:
            raise PoolCorruptionError("chunk does not belong to this pool")
        if chunk.freed:
            raise PoolCorruptionError("double free detected")
        if self._live_chunks.get(chunk.offset) is not chunk:
            raise PoolCorruptionError("unknown chunk (corrupted offset?)")
        del self._live_chunks[chunk.offset]
        chunk._freed = True
        self._used_bytes -= chunk.size
        self._frees += 1
        self._insert_free_range(chunk.offset, chunk.size)

    def _insert_free_range(self, offset: int, size: int) -> None:
        entries = self._free_list
        lo = 0
        while lo < len(entries) and entries[lo][0] < offset:
            lo += 1
        entries.insert(lo, (offset, size))
        # Coalesce with the next entry, then with the previous one.
        if lo + 1 < len(entries):
            next_offset, next_size = entries[lo + 1]
            if offset + size == next_offset:
                entries[lo] = (offset, size + next_size)
                del entries[lo + 1]
        if lo > 0:
            prev_offset, prev_size = entries[lo - 1]
            cur_offset, cur_size = entries[lo]
            if prev_offset + prev_size == cur_offset:
                entries[lo - 1] = (prev_offset, prev_size + cur_size)
                del entries[lo]

    # ------------------------------------------------------------------
    def live_chunk_count(self) -> int:
        return len(self._live_chunks)

    def check_invariants(self) -> None:
        """Validate free-list consistency; used by the property-based tests."""
        total_free = sum(size for _, size in self._free_list)
        if total_free != self.free_bytes:
            raise PoolCorruptionError(
                f"free list accounts for {total_free} bytes but pool reports {self.free_bytes}"
            )
        previous_end = 0
        for offset, size in self._free_list:
            if size <= 0:
                raise PoolCorruptionError("zero/negative sized free range")
            if offset < previous_end:
                raise PoolCorruptionError("overlapping or unsorted free ranges")
            previous_end = offset + size
        if previous_end > self.capacity_bytes:
            raise PoolCorruptionError("free range extends past pool capacity")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryPool(name={self.name!r}, capacity={self.capacity_bytes}, "
            f"used={self._used_bytes})"
        )


class PoolGroup:
    """An ordered collection of pools used as one allocation source.

    The paper notes that a buffer may "combine memory chunks obtained
    from multiple pools" so that non-uniform memory layers (HBM + DDR +
    memory-mapped files) are handled behind one interface.  A
    :class:`PoolGroup` allocates from the first pool with room,
    spilling to later pools when earlier ones fill up.
    """

    def __init__(self, pools: List[MemoryPool]) -> None:
        if not pools:
            raise ValueError("PoolGroup requires at least one pool")
        self.pools = list(pools)

    def allocate(self, nbytes: int) -> Chunk:
        last_error: Optional[PoolExhaustedError] = None
        for pool in self.pools:
            try:
                return pool.allocate(nbytes)
            except PoolExhaustedError as exc:
                last_error = exc
        raise PoolExhaustedError(
            f"no pool in group could satisfy {nbytes} bytes: {last_error}"
        )

    def stats(self) -> Dict[str, PoolStats]:
        return {pool.name: pool.stats() for pool in self.pools}

    @property
    def capacity_bytes(self) -> int:
        return sum(pool.capacity_bytes for pool in self.pools)

    @property
    def used_bytes(self) -> int:
        return sum(pool.used_bytes for pool in self.pools)

    @property
    def free_bytes(self) -> int:
        return sum(pool.free_bytes for pool in self.pools)
