"""Exception hierarchy for the memory library."""

from __future__ import annotations


class MemoryError_(Exception):
    """Base class for memory-library errors (named to avoid shadowing builtins)."""


class PoolExhaustedError(MemoryError_):
    """The memory pool could not satisfy an allocation request."""


class PoolCorruptionError(MemoryError_):
    """Internal free-list invariants were violated (double free, bad chunk)."""


class AddressError(MemoryError_):
    """An address is malformed or outside every block of the Env."""


class BlockError(MemoryError_):
    """A Block was used in a way its kind does not support."""


class EnvError(MemoryError_):
    """The Env tree is malformed or an operation on it is invalid."""
