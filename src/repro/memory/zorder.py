"""Z-order (Morton) curve indexing.

The prototype in the paper gives every Data Block a Z-order index
("by using the PDEP instruction (x86)", §IV-C) and assigns Blocks to
tasks according to that index, which preserves spatial locality across
the task partition.  This module provides a portable, pure-Python
equivalent:

* :func:`pdep` / :func:`pext` — software emulation of the x86 BMI2
  parallel bit deposit/extract instructions;
* :func:`morton_encode` / :func:`morton_decode` — dimension-generic bit
  interleaving built on top of them;
* convenience 2-D/3-D wrappers used by the DSL layers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

__all__ = [
    "pdep",
    "pext",
    "morton_encode",
    "morton_decode",
    "morton_encode_2d",
    "morton_decode_2d",
    "morton_encode_3d",
    "morton_decode_3d",
    "zorder_sorted",
]


def pdep(value: int, mask: int) -> int:
    """Parallel bit deposit: scatter the low bits of ``value`` into ``mask``.

    Equivalent to the x86 BMI2 ``PDEP`` instruction used by the paper's
    prototype to build Morton indices.
    """
    if value < 0 or mask < 0:
        raise ValueError("pdep operands must be non-negative")
    result = 0
    bit = 0
    m = mask
    while m:
        lowest = m & -m
        if (value >> bit) & 1:
            result |= lowest
        m &= m - 1
        bit += 1
    return result


def pext(value: int, mask: int) -> int:
    """Parallel bit extract: gather the bits of ``value`` selected by ``mask``."""
    if value < 0 or mask < 0:
        raise ValueError("pext operands must be non-negative")
    result = 0
    bit = 0
    m = mask
    while m:
        lowest = m & -m
        if value & lowest:
            result |= 1 << bit
        m &= m - 1
        bit += 1
    return result


@lru_cache(maxsize=None)
def _dimension_mask(dim: int, ndim: int, nbits: int) -> int:
    """Mask selecting every ``ndim``-th bit starting at ``dim`` over ``nbits`` groups.

    Memoized: masks depend only on ``(dim, ndim, nbits)`` and encode
    runs once per Block spec per warm-up, where mask construction used
    to dominate the profile.
    """
    mask = 0
    for i in range(nbits):
        mask |= 1 << (i * ndim + dim)
    return mask


@lru_cache(maxsize=None)
def _dimension_masks(ndim: int, nbits: int) -> Tuple[int, ...]:
    """All per-dimension masks for one ``(ndim, nbits)`` pair, cached."""
    return tuple(_dimension_mask(dim, ndim, nbits) for dim in range(ndim))


def morton_encode(coords: Sequence[int], nbits: int = 21) -> int:
    """Interleave ``coords`` into a single Morton index.

    ``nbits`` bounds the number of bits taken from each coordinate;
    coordinates must fit in that many bits.
    """
    ndim = len(coords)
    if ndim == 0:
        raise ValueError("morton_encode requires at least one coordinate")
    masks = _dimension_masks(ndim, nbits)
    code = 0
    for dim, coord in enumerate(coords):
        coord = int(coord)
        if coord < 0:
            raise ValueError(f"morton_encode requires non-negative coordinates, got {coord}")
        if coord >= (1 << nbits):
            raise ValueError(f"coordinate {coord} does not fit in {nbits} bits")
        code |= pdep(coord, masks[dim])
    return code


def morton_decode(code: int, ndim: int, nbits: int = 21) -> Tuple[int, ...]:
    """Inverse of :func:`morton_encode`."""
    if ndim <= 0:
        raise ValueError("ndim must be positive")
    if code < 0:
        raise ValueError("Morton code must be non-negative")
    masks = _dimension_masks(ndim, nbits)
    return tuple(pext(code, masks[dim]) for dim in range(ndim))


def morton_encode_2d(x: int, y: int, nbits: int = 21) -> int:
    """Morton index of a 2-D coordinate."""
    return morton_encode((x, y), nbits=nbits)


def morton_decode_2d(code: int, nbits: int = 21) -> Tuple[int, int]:
    """Inverse of :func:`morton_encode_2d`."""
    x, y = morton_decode(code, 2, nbits=nbits)
    return x, y


def morton_encode_3d(x: int, y: int, z: int, nbits: int = 21) -> int:
    """Morton index of a 3-D coordinate."""
    return morton_encode((x, y, z), nbits=nbits)


def morton_decode_3d(code: int, nbits: int = 21) -> Tuple[int, int, int]:
    """Inverse of :func:`morton_encode_3d`."""
    x, y, z = morton_decode(code, 3, nbits=nbits)
    return x, y, z


def zorder_sorted(items, key):
    """Sort ``items`` by the Morton index of ``key(item)`` (a coordinate tuple).

    This is the ordering the DSL layers use when assigning Blocks to
    tasks (paper §IV-C): contiguous runs of the Z-order sequence go to
    the same task, preserving spatial locality.
    """
    return sorted(items, key=lambda item: morton_encode(key(item)))
