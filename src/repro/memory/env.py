"""The Env: a tree of Blocks representing the whole data domain.

"The global structure of the target data is represented by a tree
structure of Blocks (Env)." (§III-B3)  The default tree shape follows
the paper's Fig. 2: an Empty root whose children are (a) the boundary
blocks (Arithmetic / Reference / Static) and (b) an Empty *joint* whose
children are the Data Blocks.  The joint keeps boundary blocks on a
different branch so that the locality-prioritising search hits them
last; DSL developers may insert further joints to increase locality.

The Env implements the Memory Library's Block-based interface
(§III-B6):

* :meth:`Env.get_blocks` — Blocks whose ``ch_tid`` is the caller's task
  (the aspect modules advise this join point to split Blocks across the
  tasks of their layer — AspectType II);
* :meth:`Env.refresh` — tries to finish the step: fails if any access to
  non-existent data happened, otherwise swaps the multi-buffers
  (AspectType III advises this join point to move pages between tasks);
* :meth:`Env.read_from` / :meth:`Env.write_from` — Global/Local address
  access starting from a Block, with the optional "surely inside" flag
  and MMAT support.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..aop.registry import TAG_GET_BLOCKS, TAG_REFRESH, annotate
from .address import GlobalAddress, to_local
from .block import (
    ArithmeticBlock,
    Block,
    BufferOnlyBlock,
    DataBlock,
    EmptyBlock,
    ReferenceBlock,
    StaticDataBlock,
)
from .errors import AddressError, EnvError
from .mmat import MMAT
from .page import PageKey
from .pool import MemoryPool, PoolGroup

__all__ = ["Env", "EnvStats"]


@dataclass
class EnvStats:
    """Counters describing how the Env was exercised.

    These feed three places: the MMAT effectiveness numbers in the
    Fig. 6 bench, the communication volumes used by the cost model for
    the scaling figures, and the working-memory estimate of Fig. 12.
    """

    reads: int = 0
    writes: int = 0
    in_block_reads: int = 0
    out_of_block_reads: int = 0
    searches: int = 0
    search_steps: int = 0
    mmat_hits: int = 0
    missing_recorded: int = 0
    refreshes: int = 0
    failed_refreshes: int = 0
    buffer_swaps: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    def merged_with(self, other: "EnvStats") -> "EnvStats":
        merged = EnvStats()
        for key in self.__dict__:
            setattr(merged, key, getattr(self, key) + getattr(other, key))
        return merged


class Env:
    """Tree of Blocks plus the Memory Library's Block-based interface."""

    def __init__(
        self,
        *,
        allocator: Optional[PoolGroup] = None,
        pool_bytes: int = 64 * 1024 * 1024,
        mmat_enabled: bool = False,
        name: str = "env",
    ) -> None:
        if allocator is None:
            allocator = PoolGroup([MemoryPool(pool_bytes, name=f"{name}.pool")])
        self.allocator = allocator
        self.name = name
        self.root = EmptyBlock(name=f"{name}.root")
        #: Joint under which all Data Blocks live (paper Fig. 2, node 3).
        self.data_joint = EmptyBlock(name=f"{name}.joint")
        self.root.add_child(self.data_joint)
        self.boundary_blocks: List[Block] = []
        self.blocks_by_id: Dict[int, Block] = {
            self.root.block_id: self.root,
            self.data_joint.block_id: self.data_joint,
        }
        self.stats = EnvStats()
        self.mmat = MMAT(enabled=mmat_enabled)
        #: Per-iteration cache of dense read-buffer copies used by access
        #: plans; invalidated whenever read buffers can change (refresh
        #: swap, page install, buffer-only invalidation).
        self._dense_cache: Dict[int, np.ndarray] = {}
        #: Full-block results written by fused kernels this step: after a
        #: successful refresh swap the written buffer becomes the read
        #: buffer, so the stored copy *is* the next step's dense read and
        #: is promoted straight into ``_dense_cache`` (no page-assembly
        #: pass).  Any other write to the block discards its entry.
        self._stored_dense: Dict[int, np.ndarray] = {}
        #: Pages found missing (non-existent / not-yet-valid) since the
        #: last refresh.  AspectType III advice consumes this list.
        self.missing_pages: Set[PageKey] = set()
        #: Missing pages of the refresh that most recently failed; kept so
        #: the communication advice (and the Dry-run record) can see them
        #: after ``refresh`` already returned False.
        self.last_failed_pages: Set[PageKey] = set()
        #: The step counter advanced by successful, non-warm-up refreshes.
        self.step = 0
        #: In-flight overlapped halo exchange installed by the
        #: distributed-memory aspect (an object with ``complete(env, *,
        #: drained=...)``); completed lazily by the first reader that
        #: needs halo data, or drained at the next refresh / finalize.
        self._pending_halo = None
        self._halo_lock = threading.Lock()

    # ------------------------------------------------------------------
    # tree construction (used by DSL layers)
    # ------------------------------------------------------------------
    def _register(self, block: Block) -> Block:
        self.blocks_by_id[block.block_id] = block
        if isinstance(block, ReferenceBlock):
            block.env = self
        return block

    def add_data_block(self, block: DataBlock, *, parent: Optional[Block] = None) -> DataBlock:
        """Attach a Data (or Buffer-only) Block under the data joint."""
        if not isinstance(block, DataBlock):
            raise EnvError("add_data_block expects a DataBlock (or subclass)")
        (parent or self.data_joint).add_child(block)
        return self._register(block)

    def add_boundary_block(self, block: Block) -> Block:
        """Attach a boundary block directly under the root (paper Fig. 2, node 2)."""
        if isinstance(block, DataBlock):
            raise EnvError("boundary blocks must be virtual blocks, not DataBlocks")
        self.root.add_child(block)
        self.boundary_blocks.append(block)
        return self._register(block)

    def add_joint(self, *, parent: Optional[Block] = None, name: str = "") -> EmptyBlock:
        """Insert an extra Empty joint (DSL developers use this to add locality)."""
        joint = EmptyBlock(name=name or f"{self.name}.joint{len(self.blocks_by_id)}")
        (parent or self.data_joint).add_child(joint)
        self._register(joint)
        return joint

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def data_blocks(self, *, include_buffer_only: bool = False) -> List[DataBlock]:
        """All Data Blocks in Z-order-friendly tree order."""
        blocks = [
            b
            for b in self.data_joint.iter_subtree()
            if isinstance(b, DataBlock)
            and (include_buffer_only or not isinstance(b, BufferOnlyBlock))
        ]
        return blocks

    def block(self, block_id: int) -> Block:
        try:
            return self.blocks_by_id[block_id]
        except KeyError:
            raise EnvError(f"unknown block id {block_id}") from None

    def owned_blocks(self, task_id: int) -> List[DataBlock]:
        """Data Blocks whose calc-handle task id equals ``task_id``."""
        return [b for b in self.data_blocks() if b.ch_tid == task_id]

    # ------------------------------------------------------------------
    # Block-based interface — the join points advised by aspect modules
    # ------------------------------------------------------------------
    @annotate(TAG_GET_BLOCKS)
    def get_blocks(self, warmup: bool = False) -> List[DataBlock]:
        """Return the Blocks this task must update this step.

        Without any aspect woven (serial execution) this is simply every
        Data Block of the Env.  The shared-memory / distributed-memory
        aspect modules advise this join point to return only the caller
        task's share (AspectType II).
        """
        return self.data_blocks()

    @annotate(TAG_REFRESH)
    def refresh(self, warmup: bool = False) -> bool:
        """Attempt to complete the current step.

        Returns True (and swaps every local Data Block's buffers) only
        when no access to non-existent data occurred since the previous
        refresh; otherwise records the failed pages in
        :attr:`last_failed_pages` and returns False so the caller
        re-executes the step (§III-B9).

        During warm-up (``warmup=True``) buffers are *not* swapped: the
        warm-up pass only gathers communication information and its
        numerical results are discarded.
        """
        self.stats.refreshes += 1
        self._dense_cache.clear()
        if self.missing_pages:
            self.last_failed_pages = set(self.missing_pages)
            self.missing_pages.clear()
            self.stats.failed_refreshes += 1
            # The step re-executes against the unchanged read buffers, so
            # this step's full-block stores are not (yet) readable data.
            self._stored_dense.clear()
            return False
        self.last_failed_pages = set()
        if not warmup:
            for block in self.data_blocks():
                block.refresh_swap()
                self.stats.buffer_swaps += 1
            self.step += 1
            # The buffers just written by fused full-block stores are now
            # the read buffers: their stored dense copies are valid reads.
            self._dense_cache.update(self._stored_dense)
        self._stored_dense.clear()
        return True

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def read_from(
        self,
        start: Block,
        addr: Sequence[int],
        *,
        assume_inside: bool = False,
    ):
        """Read the element at global address ``addr`` starting the search at ``start``.

        ``assume_inside=True`` is the paper's static/dynamic flag meaning
        "the data is undoubtedly contained in the start Block": the Env
        search is skipped entirely.
        """
        # This is the hottest scalar path of the platform; localise the
        # stats object and skip the relative-tuple construction entirely
        # when MMAT is disabled (it is only ever used as a memo key).
        stats = self.stats
        stats.reads += 1
        if assume_inside:
            stats.in_block_reads += 1
            return start.read(addr)

        mmat = self.mmat
        if mmat.enabled:
            relative = tuple(a - o for a, o in zip(addr, start.origin))
            memo_block = mmat.lookup(start.block_id, relative)
            if memo_block is not None:
                stats.mmat_hits += 1
                return self._read_resolved(memo_block, addr)
        else:
            relative = None

        if start.holds_data and start.contains(addr):
            stats.in_block_reads += 1
            if relative is not None:
                mmat.remember(start.block_id, relative, start)
            return start.read(addr)

        stats.out_of_block_reads += 1
        target = self.find_block(addr, start=start)
        if target is None:
            raise AddressError(
                f"no block of Env {self.name!r} contains address {tuple(addr)}"
            )
        if relative is not None:
            mmat.remember(start.block_id, relative, target)
        return self._read_resolved(target, addr)

    def _read_resolved(self, block: Block, addr: Sequence[int]):
        """Read from an already-resolved block, handling not-yet-valid buffers."""
        if isinstance(block, BufferOnlyBlock):
            index = block.element_index(addr)
            buf = block.buffer.read_buffer
            page = buf.pages[buf.page_of(index)]
            if not (block.is_valid or page.valid):
                # An overlapped halo exchange may still be in flight; its
                # pages count as present — complete it and re-check before
                # declaring the page missing (scalar-path overlap hook).
                if self._pending_halo is not None:
                    self.complete_pending_halo()
                    page = buf.pages[buf.page_of(index)]
            if not (block.is_valid or page.valid):
                key = PageKey(block.block_id, page.index)
                self.missing_pages.add(key)
                self.stats.missing_recorded += 1
                # The step's results will be discarded (refresh fails), so a
                # placeholder value is acceptable here.
                return 0.0 if block.components == 1 else np.zeros(block.components)
        return block.read(addr)

    def write_from(self, start: Block, addr: Sequence[int], value) -> None:
        """Write ``value`` at global address ``addr``; out-of-block writes search the Env."""
        self.stats.writes += 1
        if start.contains(addr):
            self.discard_full_store(start.block_id)
            start.write(addr, value)
            return
        target = self.find_block(addr, start=start)
        if target is None:
            raise AddressError(
                f"no block of Env {self.name!r} contains address {tuple(addr)} for writing"
            )
        self.discard_full_store(target.block_id)
        target.write(addr, value)

    def read(self, addr: Sequence[int]):
        """Read starting the search at the root (used by Reference blocks)."""
        target = self.find_block(addr, start=self.root)
        if target is None:
            raise AddressError(f"no block of Env {self.name!r} contains address {tuple(addr)}")
        return self._read_resolved(target, addr)

    # ------------------------------------------------------------------
    # Env search
    # ------------------------------------------------------------------
    def find_block(self, addr: Sequence[int], *, start: Optional[Block] = None) -> Optional[Block]:
        """Locality-prioritising search for the Block containing ``addr``.

        Starting from ``start`` the search first explores the node
        itself, then its descendants, then (moving upward one level at a
        time) the untried subtrees of each ancestor.  Because boundary
        blocks hang off the root on a separate branch, they are examined
        last — exactly the ordering rationale of the paper's Fig. 2.
        """
        self.stats.searches += 1
        node = start if start is not None else self.root
        visited: Set[int] = set()
        while node is not None:
            found = self._search_down(node, addr, visited)
            if found is not None:
                return found
            node = node.parent
        return None

    def _search_down(self, node: Block, addr: Sequence[int], visited: Set[int]) -> Optional[Block]:
        if node.block_id in visited:
            return None
        visited.add(node.block_id)
        self.stats.search_steps += 1
        if node.holds_data and node.contains(addr):
            return node
        for child in node.children:
            found = self._search_down(child, addr, visited)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------
    # page-based interface (used by aspect modules / the simulated network)
    # ------------------------------------------------------------------
    def page_snapshot(self, key: PageKey) -> np.ndarray:
        block = self.block(key.block_id)
        if not isinstance(block, DataBlock):
            raise EnvError(f"page snapshot requested from non-data block {block.name!r}")
        return block.page_snapshot(key.page_index)

    def page_export(self, key: PageKey) -> Tuple[np.ndarray, int]:
        """Zero-copy page export: ``(read-buffer view, content generation)``.

        The shared-memory transport copies the view's bytes into its
        arena itself, so no intermediate snapshot is allocated; the
        generation (the block's buffer-swap count) lets it reuse the
        published slot untouched while the read buffer hasn't swapped.
        The view aliases live pool memory — callers must copy before the
        next refresh and never write through it.
        """
        block = self.block(key.block_id)
        if not isinstance(block, DataBlock):
            raise EnvError(f"page export requested from non-data block {block.name!r}")
        return block.page_view(key.page_index), block.content_generation

    def page_install(self, key: PageKey, data: np.ndarray) -> None:
        block = self.block(key.block_id)
        if not isinstance(block, DataBlock):
            raise EnvError(f"page install requested on non-data block {block.name!r}")
        block.page_fill(key.page_index, data)
        self._dense_cache.pop(key.block_id, None)

    def page_install_many(self, items: Iterable[Tuple[PageKey, np.ndarray]]) -> None:
        """Install a batch of fetched pages (one aggregated halo exchange).

        Equivalent to :meth:`page_install` per item, but invalidates each
        touched block's dense-read cache only once per block.
        """
        touched: Set[int] = set()
        for key, data in items:
            block = self.block(key.block_id)
            if not isinstance(block, DataBlock):
                raise EnvError(f"page install requested on non-data block {block.name!r}")
            block.page_fill(key.page_index, data)
            touched.add(key.block_id)
        for block_id in touched:
            self._dense_cache.pop(block_id, None)

    def invalidate_buffer_only(self) -> None:
        """Mark every Buffer-only Block stale (done at each step boundary)."""
        for block in self.data_blocks(include_buffer_only=True):
            if isinstance(block, BufferOnlyBlock):
                block.invalidate()
                self._dense_cache.pop(block.block_id, None)

    # ------------------------------------------------------------------
    # overlapped halo exchange (used by the distributed-memory aspect)
    # ------------------------------------------------------------------
    def set_pending_halo(self, pending) -> None:
        """Install an in-flight overlapped halo exchange on this Env.

        Any exchange still pending from a previous step is completed
        first (its pages would otherwise overwrite the newer data),
        then ``pending`` becomes the exchange the next halo reader —
        a boundary plan segment, a scalar Buffer-only access, or the
        next refresh — will complete.
        """
        self.complete_pending_halo(drained=True)
        with self._halo_lock:
            self._pending_halo = pending

    def has_pending_halo(self) -> bool:
        """Whether an overlapped halo exchange is still in flight."""
        return self._pending_halo is not None

    def complete_pending_halo(self, *, drained: bool = False) -> bool:
        """Wait for and install the in-flight halo exchange, if any.

        Thread-safe (hybrid runs: several shared-memory threads sweep
        one rank's Env concurrently — exactly one completes the
        exchange, the others block until the pages are installed).
        ``drained=True`` marks a completion that hid no latency (refresh
        entry / re-issue), accounted separately by the aspect.  Returns
        True when an exchange was completed by this call.
        """
        if self._pending_halo is None:
            return False
        with self._halo_lock:
            pending = self._pending_halo
            if pending is None:
                return False
            try:
                pending.complete(self, drained=drained)
            finally:
                self._pending_halo = None
            return True

    # ------------------------------------------------------------------
    # bulk access (used by compiled access plans)
    # ------------------------------------------------------------------
    def dense_read(self, block: DataBlock) -> np.ndarray:
        """Contiguous ``(elements, components)`` copy of a Block's read buffer.

        Cached per iteration so a plan gathering from the same source
        Block several times (one segment per stencil offset) pays for a
        single page-assembly pass; the cache is invalidated on refresh,
        page install and Buffer-only invalidation.
        """
        cached = self._dense_cache.get(block.block_id)
        if cached is None:
            cached = block.buffer.read_buffer.dense()
            self._dense_cache[block.block_id] = cached
        return cached

    def note_full_store(self, block: DataBlock, flat: np.ndarray) -> None:
        """Record that ``flat`` was just written over *every* element of
        ``block``'s write buffer (a fused full-block store).

        The copy is promoted into the dense-read cache by the next
        successful refresh (the write buffer becomes the read buffer),
        so steady-state fused sweeps never re-assemble pages.  Callers
        that write to the block through any other path must call
        :meth:`discard_full_store` or the promoted copy would go stale.
        """
        buf = block.buffer.read_buffer
        self._stored_dense[block.block_id] = np.array(
            flat, dtype=buf.dtype, copy=True
        ).reshape(block.element_count, block.components)

    def discard_full_store(self, block_id: int) -> None:
        """Drop a pending full-block store (the block was written again)."""
        if self._stored_dense:
            self._stored_dense.pop(block_id, None)

    def plan_page_requirements(self) -> Set[PageKey]:
        """Union of the Buffer-only (halo) pages every compiled plan reads.

        The distributed-memory aspect merges this set into its Dry-run
        prefetch: once a plan is compiled, the full halo of the sweep is
        known statically and can be bulk-fetched one page per message,
        without waiting for a failed refresh to reveal each page.
        """
        needed: Set[PageKey] = set()
        for plan in self.mmat.plans.values():
            needed.update(plan.remote_pages())
        return needed

    # ------------------------------------------------------------------
    # accounting (Fig. 12)
    # ------------------------------------------------------------------
    def data_bytes(self) -> int:
        """Bytes of pool memory held by block buffers."""
        return sum(b.nbytes for b in self.data_blocks(include_buffer_only=True))

    def structure_bytes(self) -> int:
        """Rough footprint of the Env structure itself (tree + MMAT memo)."""
        import sys

        total = 0
        for block in self.blocks_by_id.values():
            total += sys.getsizeof(block)
            total += sys.getsizeof(block.children)
        total += self.mmat.memory_bytes()
        return total

    def memory_report(self) -> dict:
        """Decomposition used by the Fig. 12 benchmark."""
        pool_stats = self.allocator.stats() if isinstance(self.allocator, PoolGroup) else {}
        return {
            "pool_capacity": self.allocator.capacity_bytes,
            "pool_used": self.allocator.used_bytes,
            "pool_unused": self.allocator.free_bytes,
            "env_structure": self.structure_bytes(),
            "pools": {name: stats.__dict__ for name, stats in pool_stats.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Env(name={self.name!r}, data_blocks={len(self.data_blocks())}, "
            f"boundaries={len(self.boundary_blocks)}, step={self.step})"
        )
