"""Multi-buffering for Data Blocks.

Every Data Block "has a multi-buffering to store the data" (§III-B3):
kernels read step *n-1* data from the **read buffer** while writing
step *n* results into the **write buffer**; a successful ``refresh``
swaps the two.  Each buffer is a collection of pages, each page backed
by a chunk from a memory pool (possibly different pools, see
:class:`repro.memory.pool.PoolGroup`).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from .errors import BlockError
from .page import Page
from .pool import PoolGroup

__all__ = ["BlockBuffer", "MultiBuffer"]


class BlockBuffer:
    """One buffer generation of a Data Block: a list of pages."""

    def __init__(
        self,
        element_count: int,
        page_elements: int,
        components: int,
        dtype,
        allocator: PoolGroup,
    ) -> None:
        if element_count <= 0:
            raise BlockError("buffer must hold a positive number of elements")
        if page_elements <= 0:
            raise BlockError("page size must be positive")
        self.element_count = int(element_count)
        self.page_elements = int(page_elements)
        self.components = int(components)
        self.dtype = np.dtype(dtype)
        self.pages: List[Page] = []
        remaining = self.element_count
        index = 0
        while remaining > 0:
            in_page = min(self.page_elements, remaining)
            # Pages are uniformly sized (page_elements) so page index maps
            # directly to element ranges; the final partial page still
            # reserves a full page worth of elements, mirroring the fixed
            # page granularity of the C++ prototype.
            page = Page(index, self.page_elements, self.components, self.dtype, allocator)
            if in_page < self.page_elements:
                page.array[in_page:, :] = 0
            self.pages.append(page)
            remaining -= in_page
            index += 1

    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        return len(self.pages)

    @property
    def nbytes(self) -> int:
        return sum(page.nbytes for page in self.pages)

    def locate(self, element_index: int) -> tuple:
        """Return ``(page, slot)`` for a linear element index."""
        if element_index < 0 or element_index >= self.element_count:
            raise BlockError(
                f"element index {element_index} outside buffer of {self.element_count}"
            )
        return (
            self.pages[element_index // self.page_elements],
            element_index % self.page_elements,
        )

    def read(self, element_index: int) -> np.ndarray:
        page, slot = self.locate(element_index)
        return page.read(slot)

    def write(self, element_index: int, value) -> None:
        page, slot = self.locate(element_index)
        page.write(slot, value)

    def page_of(self, element_index: int) -> int:
        """Return the page index containing ``element_index``."""
        if element_index < 0 or element_index >= self.element_count:
            raise BlockError(
                f"element index {element_index} outside buffer of {self.element_count}"
            )
        return element_index // self.page_elements

    def dense(self) -> np.ndarray:
        """Assemble a contiguous ``(element_count, components)`` copy.

        Provided for vectorised extensions and for tests; the per-point
        kernel path never calls it.
        """
        out = np.empty((self.element_count, self.components), dtype=self.dtype)
        for index in range(self.page_count):
            start = index * self.page_elements
            stop = min(start + self.page_elements, self.element_count)
            out[start:stop] = self.pages[index].array[: stop - start]
        return out

    def load_dense(self, data: np.ndarray) -> None:
        """Scatter a contiguous array back into the pages."""
        data = np.asarray(data, dtype=self.dtype).reshape(self.element_count, self.components)
        for index in range(self.page_count):
            start = index * self.page_elements
            stop = min(start + self.page_elements, self.element_count)
            self.pages[index].array[: stop - start] = data[start:stop]
            self.pages[index].dirty = True

    def clear_dirty(self) -> None:
        for page in self.pages:
            page.dirty = False

    def set_valid(self, valid: bool) -> None:
        for page in self.pages:
            page.valid = valid

    def release(self) -> None:
        for page in self.pages:
            page.release()
        self.pages.clear()

    def __iter__(self) -> Iterator[Page]:
        return iter(self.pages)


class MultiBuffer:
    """Read/write buffer pair (double buffering by default).

    ``depth`` larger than 2 is supported for pipelined schemes (the
    paper only needs 2); ``swap`` rotates which generation is the read
    buffer.
    """

    def __init__(
        self,
        element_count: int,
        page_elements: int,
        components: int,
        dtype,
        allocator: PoolGroup,
        depth: int = 2,
    ) -> None:
        if depth < 1:
            raise BlockError("MultiBuffer depth must be >= 1")
        self.depth = depth
        self.buffers: List[BlockBuffer] = [
            BlockBuffer(element_count, page_elements, components, dtype, allocator)
            for _ in range(depth)
        ]
        self._read_index = 0
        self.swaps = 0

    # ------------------------------------------------------------------
    @property
    def read_buffer(self) -> BlockBuffer:
        return self.buffers[self._read_index]

    @property
    def write_buffer(self) -> BlockBuffer:
        if self.depth == 1:
            return self.buffers[0]
        return self.buffers[(self._read_index + 1) % self.depth]

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self.buffers)

    def swap(self) -> None:
        """Make the current write buffer the new read buffer."""
        if self.depth > 1:
            self._read_index = (self._read_index + 1) % self.depth
        self.swaps += 1
        self.write_buffer.clear_dirty()

    def release(self) -> None:
        for buf in self.buffers:
            buf.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultiBuffer(depth={self.depth}, read={self._read_index}, swaps={self.swaps})"
