"""Memory Library: pools, pages, multi-buffers, Blocks and the Env tree.

This package is the Python counterpart of the paper's Memory Library
(Platform Part B.2): a fixed-size Memory Pool from which Block buffers
draw page-sized chunks, a Block-based interface used by end-user
kernels (Global/Local address access, ``get_blocks``, ``refresh``) and
a Page-based interface used by the aspect modules for validity
management and inter-task communication.
"""

from .address import GlobalAddress, LocalAddress, offset_in_box, to_global, to_local
from .block import (
    ArithmeticBlock,
    Block,
    BufferOnlyBlock,
    DataBlock,
    EmptyBlock,
    ReferenceBlock,
    StaticDataBlock,
)
from .buffer import BlockBuffer, MultiBuffer
from .env import Env, EnvStats
from .errors import (
    AddressError,
    BlockError,
    EnvError,
    MemoryError_,
    PoolCorruptionError,
    PoolExhaustedError,
)
from .mmat import MMAT, AccessPlan, PlanSegment, compile_address_plan, compile_offsets_plan
from .page import Page, PageKey
from .pool import Chunk, MemoryPool, PoolGroup, PoolStats
from .zorder import (
    morton_decode,
    morton_decode_2d,
    morton_decode_3d,
    morton_encode,
    morton_encode_2d,
    morton_encode_3d,
    pdep,
    pext,
    zorder_sorted,
)

__all__ = [
    "GlobalAddress",
    "LocalAddress",
    "to_global",
    "to_local",
    "offset_in_box",
    "Block",
    "DataBlock",
    "BufferOnlyBlock",
    "EmptyBlock",
    "StaticDataBlock",
    "ArithmeticBlock",
    "ReferenceBlock",
    "BlockBuffer",
    "MultiBuffer",
    "Env",
    "EnvStats",
    "MMAT",
    "AccessPlan",
    "PlanSegment",
    "compile_offsets_plan",
    "compile_address_plan",
    "Page",
    "PageKey",
    "Chunk",
    "MemoryPool",
    "PoolGroup",
    "PoolStats",
    "MemoryError_",
    "PoolExhaustedError",
    "PoolCorruptionError",
    "AddressError",
    "BlockError",
    "EnvError",
    "pdep",
    "pext",
    "morton_encode",
    "morton_decode",
    "morton_encode_2d",
    "morton_decode_2d",
    "morton_encode_3d",
    "morton_decode_3d",
    "zorder_sorted",
]
