"""MMAT — Memorization of Memory Access Type — and compiled access plans.

"The platform has a function called Memorization of memory access type
(MMAT) that automates to omit Env searches […] by memorizing for each
access, whether in- or out-of Block access, it is possible to omit Env
search overheads." (§III-B6)

The memo is keyed by ``(start block id, relative coordinates of the
requested address with respect to that block's origin)`` — i.e. one
entry per *access site as seen from a block*.  Because Assumption II
says the memory-access pattern is static across iterations, the second
and later iterations resolve almost every access from the memo instead
of searching the Env tree.

Access plans push the same assumption one step further: once every site
of a whole-block sweep has been resolved, the per-site memo can be
*compiled* into a handful of NumPy index arrays (one gather per source
Block plus a precomputed constant table for Arithmetic/Static boundary
sites), and the whole sweep executes as bulk array operations instead
of ``size_x * size_y`` scalar ``get`` calls.  Plans are cached on the
:class:`MMAT` instance, so :meth:`MMAT.reset` — called by the warm-up
macro, or by end users when the access pattern changes — invalidates
the compiled plans together with the scalar memo.

MMAT does **not** detect access-pattern changes; end users must call
:meth:`MMAT.reset` when the pattern changes (the annotation library's
warm-up macro does this automatically, matching the paper's
"previously collected information at MMAT is cleared when the warm-up
macro is called").
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .address import GlobalAddress
from .block import BufferOnlyBlock, DataBlock, ReferenceBlock
from .errors import AddressError
from .page import PageKey

__all__ = [
    "MMAT",
    "AccessPlan",
    "PlanSegment",
    "compile_offsets_plan",
    "compile_address_plan",
]


class PlanSegment:
    """Gather instructions against one source Block of an :class:`AccessPlan`.

    ``src_idx`` are flat element indices into the source Block's dense
    read buffer; ``dst_idx`` are the matching flat site indices of the
    plan output.  For Buffer-only sources the segment also keeps the
    page indices it touches so the executor can do one bulk validity
    check per iteration instead of one per element.
    """

    __slots__ = ("block", "src_idx", "dst_idx", "src_pages", "check_pages", "_check_objs")

    def __init__(self, block: DataBlock, src_idx, dst_idx) -> None:
        self.block = block
        self.src_idx = np.ascontiguousarray(src_idx, dtype=np.intp)
        self.dst_idx = np.ascontiguousarray(dst_idx, dtype=np.intp)
        if isinstance(block, BufferOnlyBlock):
            self.src_pages = self.src_idx // block.page_elements
            self.check_pages = np.unique(self.src_pages)
        else:
            self.src_pages = None
            self.check_pages = None
        self._check_objs = None

    def invalid_pages(self) -> list:
        """Indices of this segment's halo pages that are not valid yet.

        Buffer-only Blocks never swap buffers, so the page objects can be
        resolved once and the per-call validity check reduces to reading
        one flag per touched page (the hot-path version of the old
        ``pages[p].valid`` indexing loop).
        """
        objs = self._check_objs
        if objs is None:
            pages = self.block.buffer.read_buffer.pages
            objs = [(int(p), pages[p]) for p in self.check_pages]
            self._check_objs = objs
        return [index for index, page in objs if not page.valid]

    @property
    def nbytes(self) -> int:
        total = self.src_idx.nbytes + self.dst_idx.nbytes
        if self.src_pages is not None:
            total += self.src_pages.nbytes + self.check_pages.nbytes
        return total


#: Monotonic version numbers handed to every compiled plan: a recompiled
#: plan (after ``MMAT.reset``) gets a new version, so caches keyed by the
#: version (the fused-kernel cache) can never confuse it with its
#: predecessor even if the plan object's id is reused.
_PLAN_VERSIONS = itertools.count(1)


class AccessPlan:
    """A compiled whole-block access pattern, executable as bulk NumPy ops."""

    __slots__ = (
        "shape",
        "n_sites",
        "components",
        "dtype",
        "segments",
        "const_dst",
        "const_vals",
        "in_block_sites",
        "resolved_sites",
        "out_of_block_sites",
        "kind",
        "version",
        "offsets",
        "_split",
        "_halo_sites",
        "_elem_partition",
        "_scratch",
    )

    def __init__(
        self,
        *,
        shape: Tuple[int, ...],
        n_sites: int,
        components: int,
        dtype,
        segments: List[PlanSegment],
        const_dst: Optional[np.ndarray],
        const_vals: Optional[np.ndarray],
        in_block_sites: int,
        resolved_sites: int,
        out_of_block_sites: int,
        kind: str = "offsets",
        offsets: Optional[Tuple[Tuple[int, ...], ...]] = None,
    ) -> None:
        self.shape = tuple(shape)
        self.n_sites = int(n_sites)
        self.components = int(components)
        self.dtype = np.dtype(dtype)
        self.segments = segments
        self.const_dst = const_dst
        self.const_vals = const_vals
        #: Sites served by the start Block itself (the scalar path's
        #: "surely inside" / in-block reads).
        self.in_block_sites = int(in_block_sites)
        #: Sites that required an Env resolution at compile time — the
        #: sites the scalar path would serve from the MMAT memo.
        self.resolved_sites = int(resolved_sites)
        self.out_of_block_sites = int(out_of_block_sites)
        #: How the plan was compiled: ``"offsets"`` (site order is
        #: offset-major over the block's elements) or ``"addresses"``
        #: (arbitrary site order from an indirect address table).
        self.kind = str(kind)
        #: Monotonic compile version; caches keyed by it (fused kernels)
        #: are implicitly invalidated when the plan is recompiled.
        self.version = next(_PLAN_VERSIONS)
        #: The normalized stencil offsets of an offsets plan (None for
        #: address plans); the fusion pass needs them to lay out its
        #: padded scratch field.
        self.offsets = offsets
        self._split: Optional[Tuple[List[PlanSegment], List[PlanSegment]]] = None
        self._halo_sites: Optional[np.ndarray] = None
        self._elem_partition: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: One-element scratch pool for :meth:`execute` (list ``pop``/
        #: ``append`` is atomic under the GIL, so concurrent hybrid
        #: threads executing the same plan never alias one buffer — the
        #: loser of the pop simply allocates a fresh array).
        self._scratch: List[np.ndarray] = []

    # ------------------------------------------------------------------
    def split(self) -> Tuple[List[PlanSegment], List[PlanSegment]]:
        """Partition the segments into ``(interior, boundary)`` sub-plans.

        The *interior* sub-plan gathers only from locally-owned sources
        (Data Blocks plus the compile-time constants), so it can run
        before a halo exchange completed; the *boundary* sub-plan's
        segments read Buffer-only (halo) pages and must wait for them.
        The partition is what lets the overlapped refresh hide the halo
        round-trip behind the interior computation.
        """
        if self._split is None:
            interior = [seg for seg in self.segments if seg.check_pages is None]
            boundary = [seg for seg in self.segments if seg.check_pages is not None]
            self._split = (interior, boundary)
        return self._split

    @property
    def has_halo(self) -> bool:
        """Whether any segment gathers from a Buffer-only (halo) source."""
        return bool(self.split()[1])

    def halo_sites(self) -> np.ndarray:
        """Flat output sites served by the boundary (halo) segments, sorted."""
        if self._halo_sites is None:
            boundary = self.split()[1]
            if boundary:
                self._halo_sites = np.unique(
                    np.concatenate([seg.dst_idx for seg in boundary])
                )
            else:
                self._halo_sites = np.empty(0, dtype=np.intp)
        return self._halo_sites

    def element_partition(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(interior, boundary)`` output *elements* of an offsets plan.

        Valid for plans whose site order is offset-major over the block's
        elements (``compile_offsets_plan``): a boundary element is one
        whose stencil reaches halo data at any offset.  Cached — the
        partition is pure in the plan, and the overlapped sweep needs it
        every step.

        Address plans (``gather_global``) have no element-major site
        order, so the modulo arithmetic below would silently produce a
        meaningless partition — they raise instead.
        """
        if self.kind != "offsets":
            raise AddressError(
                f"element_partition is only defined for offsets plans "
                f"(offset-major site order); this plan was compiled as "
                f"{self.kind!r}"
            )
        if self._elem_partition is None:
            n_elem = int(np.prod(self.shape))
            boundary = np.unique(self.halo_sites() % n_elem)
            interior = np.setdiff1d(np.arange(n_elem), boundary, assume_unique=True)
            self._elem_partition = (interior, boundary)
        return self._elem_partition

    # ------------------------------------------------------------------
    def execute(self, env) -> np.ndarray:
        """Run the plan against the Env's current read buffers.

        Returns a ``(n_sites, components)`` array in plan site order.
        Buffer-only sites whose pages have not arrived yet are recorded
        in ``env.missing_pages`` (the following refresh fails and the
        step is re-executed, exactly as on the scalar path) and filled
        with placeholder zeros.

        The interior segments always run first; when an overlapped halo
        exchange is still in flight (``env.has_pending_halo()``), it is
        completed right before the first boundary segment reads halo
        data — so every batched gather transparently overlaps the
        exchange with at least its interior gather work.

        The returned array is recycled: the *next* ``execute`` of this
        plan reuses it as scratch, so callers must consume (or copy) the
        result before re-executing the plan — true for every batched
        kernel, which gathers, applies and scatters within one step.
        """
        try:
            out = self._scratch.pop()
        except IndexError:
            out = np.empty((self.n_sites, self.components), dtype=self.dtype)
        if self.const_dst is not None:
            out[self.const_dst] = self.const_vals
        interior, boundary = self.split()
        missing = self.gather_segments(env, interior, out)
        if boundary:
            if env.has_pending_halo():
                env.complete_pending_halo()
            missing += self.gather_segments(env, boundary, out)
        self.account(env, missing)
        self._scratch.append(out)
        return out

    def gather_segments(self, env, segments: List[PlanSegment], out: np.ndarray) -> int:
        """Gather ``segments`` into ``out``; returns missing-page count."""
        missing = 0
        for seg in segments:
            block = seg.block
            vals = env.dense_read(block)[seg.src_idx]
            if seg.check_pages is not None and not block.is_valid:
                bad = seg.invalid_pages()
                if bad:
                    block_id = block.block_id
                    for p in bad:
                        env.missing_pages.add(PageKey(block_id, p))
                    missing += len(bad)
                    vals[np.isin(seg.src_pages, bad)] = 0.0
            out[seg.dst_idx] = vals
        return missing

    def account(self, env, missing: int) -> None:
        """Credit one full execution of this plan to the Env's counters."""
        stats = env.stats
        stats.reads += self.n_sites
        stats.in_block_reads += self.in_block_sites
        stats.mmat_hits += self.resolved_sites
        stats.missing_recorded += missing

    # ------------------------------------------------------------------
    def remote_pages(self) -> List[PageKey]:
        """Page keys of every Buffer-only page this plan reads (halo set)."""
        keys: List[PageKey] = []
        for seg in self.segments:
            if seg.check_pages is not None:
                block_id = seg.block.block_id
                keys.extend(PageKey(block_id, int(p)) for p in seg.check_pages)
        return keys

    @property
    def nbytes(self) -> int:
        """Memory held by the plan's index/constant arrays (Fig. 12 bench)."""
        total = sum(seg.nbytes for seg in self.segments)
        if self.const_dst is not None:
            total += self.const_dst.nbytes + self.const_vals.nbytes
        return total


# ----------------------------------------------------------------------
# plan compilation
# ----------------------------------------------------------------------

def _classify(env, target, addr: Tuple[int, ...], depth: int = 0):
    """Classify a resolved Block: a gatherable data source or a constant.

    Reference blocks are followed through their (static) address mapping
    so mirror/Neumann boundaries compile down to gathers on the mapped
    interior Block; Arithmetic and Static blocks are evaluated once at
    compile time (their value is a pure function of the address —
    Assumption II makes the result valid for every later iteration).
    """
    if isinstance(target, DataBlock):
        return ("data", target, target.element_index(addr))
    if isinstance(target, ReferenceBlock):
        if depth >= 4:
            raise AddressError(
                f"reference chain at {addr} too deep to compile into an access plan"
            )
        mapped = tuple(target.mapper(GlobalAddress(addr)))
        if target.target is not None and target.target.contains(mapped):
            nxt = target.target
        else:
            nxt = env.find_block(mapped, start=env.root)
        if nxt is None:
            raise AddressError(
                f"reference block {target.name!r} cannot resolve mapped address {mapped}"
            )
        return _classify(env, nxt, mapped, depth + 1)
    value = np.asarray(target.read(addr), dtype=np.float64).reshape(-1)
    return ("const", None, value)


def _resolve_site(env, start, addr: Tuple[int, ...]):
    """Resolve one out-of-block site the way the scalar path would.

    Consults (and populates) the MMAT memo so compile-time resolution
    and scalar resolution share the same record, then classifies the
    target for the plan.
    """
    mmat = env.mmat
    relative = tuple(a - o for a, o in zip(addr, start.origin))
    target = mmat.lookup(start.block_id, relative)
    if target is None:
        if start.holds_data and start.contains(addr):
            target = start
        else:
            target = env.find_block(addr, start=start)
        if target is None:
            raise AddressError(
                f"no block of Env {env.name!r} contains address {tuple(addr)}"
            )
        mmat.remember(start.block_id, relative, target)
    return _classify(env, target, addr)


class _PlanBuilder:
    """Accumulates per-source gather lists while sites are resolved."""

    def __init__(self, block: DataBlock) -> None:
        self.block = block
        self.sources: Dict[int, list] = {}
        self.const_dst: List[int] = []
        self.const_vals: List[np.ndarray] = []
        self.in_block_sites = 0
        self.resolved_sites = 0
        self.out_of_block_sites = 0

    def add_bulk(self, source: DataBlock, src_idx, dst_idx) -> None:
        entry = self.sources.setdefault(source.block_id, [source, [], []])
        entry[1].append(np.asarray(src_idx, dtype=np.intp))
        entry[2].append(np.asarray(dst_idx, dtype=np.intp))

    def add_site(self, env, addr: Tuple[int, ...], dst: int) -> None:
        kind, target, payload = _resolve_site(env, self.block, addr)
        if kind == "const":
            self.const_dst.append(dst)
            self.const_vals.append(payload)
        else:
            self.add_bulk(target, [payload], [dst])
            if target is self.block:
                self.in_block_sites += 1
            else:
                self.out_of_block_sites += 1
        self.resolved_sites += 1

    def build(
        self,
        *,
        n_sites: int,
        kind: str = "offsets",
        offsets: Optional[Tuple[Tuple[int, ...], ...]] = None,
    ) -> AccessPlan:
        block = self.block
        segments = [
            PlanSegment(source, np.concatenate(srcs), np.concatenate(dsts))
            for source, srcs, dsts in self.sources.values()
        ]
        components = getattr(block, "components", 1)
        dtype = block.buffer.read_buffer.dtype
        if self.const_dst:
            const_dst = np.asarray(self.const_dst, dtype=np.intp)
            const_vals = np.vstack(
                [np.broadcast_to(v, (components,)) for v in self.const_vals]
            ).astype(dtype)
        else:
            const_dst = None
            const_vals = None
        return AccessPlan(
            shape=block.shape,
            n_sites=n_sites,
            components=components,
            dtype=dtype,
            segments=segments,
            const_dst=const_dst,
            const_vals=const_vals,
            in_block_sites=self.in_block_sites,
            resolved_sites=self.resolved_sites,
            out_of_block_sites=self.out_of_block_sites,
            kind=kind,
            offsets=offsets,
        )


def compile_offsets_plan(env, block: DataBlock, offsets: Sequence[Tuple[int, ...]]) -> AccessPlan:
    """Compile a stencil sweep: every element of ``block``, per offset.

    Site order is offset-major (``site = offset_index * element_count +
    linear_element_index``), with elements in the block's row-major
    order, so the executed output reshapes directly to
    ``(len(offsets),) + block.shape``.
    """
    shape = block.shape
    nd = len(shape)
    n_elem = block.element_count
    coords = np.indices(shape, dtype=np.int64).reshape(nd, n_elem)
    shape_col = np.asarray(shape, dtype=np.int64)[:, None]
    origin = block.origin
    builder = _PlanBuilder(block)

    for oi, off in enumerate(offsets):
        if len(off) != nd:
            raise AddressError(
                f"offset {tuple(off)} does not match block dimensionality {nd}"
            )
        shifted = coords + np.asarray(off, dtype=np.int64)[:, None]
        inside = np.all((shifted >= 0) & (shifted < shape_col), axis=0)
        base = oi * n_elem
        in_idx = np.nonzero(inside)[0]
        if in_idx.size:
            src_flat = np.ravel_multi_index(
                tuple(shifted[d, in_idx] for d in range(nd)), shape
            )
            builder.add_bulk(block, src_flat, base + in_idx)
            builder.in_block_sites += int(in_idx.size)
        for e in np.nonzero(~inside)[0]:
            addr = tuple(int(origin[d] + shifted[d, e]) for d in range(nd))
            builder.add_site(env, addr, base + int(e))
    norm_offsets = tuple(tuple(int(c) for c in off) for off in offsets)
    return builder.build(
        n_sites=len(offsets) * n_elem, kind="offsets", offsets=norm_offsets
    )


def compile_address_plan(env, block: DataBlock, addresses) -> AccessPlan:
    """Compile an indirect sweep: arbitrary global addresses per site.

    ``addresses`` is an integer array; for 1-D address spaces any shape
    is accepted (sites are taken in row-major order), for N-D blocks the
    last axis must hold the address coordinates.  Duplicate addresses
    are resolved once (``np.unique``) and fanned back out through the
    inverse index, so compilation cost scales with the number of
    *distinct* addresses, not sites.
    """
    nd = block.ndim
    addr_arr = np.asarray(addresses, dtype=np.int64)
    if nd == 1:
        flat = addr_arr.reshape(-1, 1)
    else:
        if addr_arr.shape[-1] != nd:
            raise AddressError(
                f"address array last axis {addr_arr.shape[-1]} does not match "
                f"block dimensionality {nd}"
            )
        flat = addr_arr.reshape(-1, nd)
    n_sites = flat.shape[0]
    uniq, inv = np.unique(flat, axis=0, return_inverse=True)
    inv = inv.reshape(-1)
    builder = _PlanBuilder(block)

    # Resolve each distinct address once, then gather all duplicate
    # sites of that address with one index expression.
    for u in range(uniq.shape[0]):
        addr = tuple(int(c) for c in uniq[u])
        dst = np.nonzero(inv == u)[0]
        kind, target, payload = (
            ("data", block, block.element_index(addr))
            if block.contains(addr)
            else _resolve_site(env, block, addr)
        )
        if kind == "const":
            builder.const_dst.extend(int(d) for d in dst)
            builder.const_vals.extend([payload] * dst.size)
        else:
            builder.add_bulk(target, np.full(dst.size, payload, dtype=np.intp), dst)
            if target is block:
                builder.in_block_sites += int(dst.size)
            else:
                builder.out_of_block_sites += int(dst.size)
    # Indirect accesses carry no static "inside" hint, so the scalar
    # path would resolve *every* site through the memo.
    builder.resolved_sites = n_sites
    return builder.build(n_sites=n_sites, kind="addresses")


# ----------------------------------------------------------------------
# the memo itself
# ----------------------------------------------------------------------

class MMAT:
    """Per-Env memo of memory-access resolutions plus compiled plans."""

    __slots__ = (
        "enabled",
        "_memo",
        "_plans",
        "_fused",
        "hits",
        "misses",
        "resets",
        "plan_compiles",
        "plan_compiles_uncached",
        "plan_executions",
        "plan_exec_sites",
        "fallback_sites",
    )

    def __init__(self, enabled: bool = False) -> None:
        #: MMAT is opt-in: "end-users can use this function by explicitly
        #: enabling it".
        self.enabled = bool(enabled)
        self._memo: Dict[Tuple[int, Tuple[int, ...]], object] = {}
        #: Compiled access plans, keyed by ``(block_id, kind, signature)``.
        self._plans: Dict[tuple, AccessPlan] = {}
        #: Fused kernels (plan + elementwise fn compiled into one
        #: generated function), keyed by ``(plan version, fn identity,
        #: dtype, temporal depth)``; cleared together with the plans.
        self._fused: Dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0
        self.resets = 0
        self.plan_compiles = 0
        #: Plans compiled for uncached ``gather_global`` calls (no
        #: ``key=``): recompiled every call by design, so they are
        #: counted separately and excluded from plan-coverage numbers.
        self.plan_compiles_uncached = 0
        self.plan_executions = 0
        self.plan_exec_sites = 0
        self.fallback_sites = 0

    # ------------------------------------------------------------------
    def key(self, start_block_id: int, relative: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        """The memo key of one access site: ``(origin block, relative offset)``."""
        return (start_block_id, relative)

    def lookup(self, start_block_id: int, relative: Tuple[int, ...]):
        """Return the memorized target block, or None on a miss."""
        if not self.enabled:
            return None
        block = self._memo.get((start_block_id, relative))
        if block is None:
            self.misses += 1
        else:
            self.hits += 1
        return block

    def remember(self, start_block_id: int, relative: Tuple[int, ...], block) -> None:
        """Memorize that accesses at this site resolve to ``block``."""
        if self.enabled:
            self._memo[(start_block_id, relative)] = block

    # ------------------------------------------------------------------
    # compiled plans
    # ------------------------------------------------------------------
    def plan_lookup(self, key: tuple) -> Optional[AccessPlan]:
        """Return the compiled plan for ``key``, or None (compile needed)."""
        if not self.enabled:
            return None
        return self._plans.get(key)

    def plan_store(self, key: tuple, plan: AccessPlan) -> None:
        """Cache a freshly compiled plan (no-op while MMAT is disabled)."""
        if self.enabled:
            self._plans[key] = plan
            self.plan_compiles += 1

    def note_execution(self, plan: AccessPlan) -> None:
        """Account one vectorized plan execution."""
        self.plan_executions += 1
        self.plan_exec_sites += plan.n_sites

    def note_uncached_compile(self) -> None:
        """Account one per-call (uncached) plan compile.

        ``gather_global`` without ``key=`` recompiles every call by
        design; those compiles are tracked here instead of
        ``plan_compiles`` so plan-coverage numbers stay meaningful.
        """
        self.plan_compiles_uncached += 1

    # ------------------------------------------------------------------
    # fused kernels (plan + fn compiled into one generated function)
    # ------------------------------------------------------------------
    def fused_lookup(self, key: tuple):
        """Return the cached fused kernel for ``key``, or None."""
        if not self.enabled:
            return None
        return self._fused.get(key)

    def fused_store(self, key: tuple, kernel) -> None:
        """Cache a fused kernel (no-op while MMAT is disabled)."""
        if self.enabled:
            self._fused[key] = kernel

    def note_fallback(self, sites: int) -> None:
        """Account ``sites`` element accesses served by the scalar fallback."""
        self.fallback_sites += int(sites)

    @property
    def plans(self) -> Dict[tuple, AccessPlan]:
        """Read-only view of the compiled plans (used by prefetch advice)."""
        return self._plans

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget every memorized resolution *and* every compiled plan
        (the access pattern changed)."""
        self._memo.clear()
        self._plans.clear()
        # Fused kernels bake a specific plan's gather tables into
        # generated code, so they die with the plans they wrap.
        self._fused.clear()
        self.resets += 1

    def __len__(self) -> int:
        return len(self._memo)

    def memory_bytes(self) -> int:
        """Rough footprint of the memo table and the compiled plan arrays
        (reported in the Fig. 12 bench)."""
        # Key: 2 small ints + tuple overhead; value: pointer.  A compact
        # estimate is sufficient for the memory-usage decomposition.
        total = 120 * len(self._memo)
        total += sum(plan.nbytes for plan in self._plans.values())
        return total

    def stats(self) -> dict:
        """Memo and plan statistics (hit-rate, compiled plans, vectorized %)."""
        lookups = self.hits + self.misses
        plan_sites = sum(plan.n_sites for plan in self._plans.values())
        vector_total = self.plan_exec_sites + self.fallback_sites
        return {
            "enabled": self.enabled,
            "entries": len(self._memo),
            "hits": self.hits,
            "misses": self.misses,
            "resets": self.resets,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "plans": len(self._plans),
            "plan_sites": plan_sites,
            "plan_compiles": self.plan_compiles,
            "plan_compiles_uncached": self.plan_compiles_uncached,
            "fused_kernels": sum(
                1 for k in self._fused.values() if k is not None and k != "unfusable"
            ),
            "plan_executions": self.plan_executions,
            "plan_exec_sites": self.plan_exec_sites,
            "fallback_sites": self.fallback_sites,
            #: Fraction of batched accesses actually served by compiled
            #: plans (1.0 = fully vectorized, 0.0 = all scalar fallback).
            "vectorized_fraction": (
                self.plan_exec_sites / vector_total if vector_total else 0.0
            ),
        }
