"""MMAT — Memorization of Memory Access Type.

"The platform has a function called Memorization of memory access type
(MMAT) that automates to omit Env searches […] by memorizing for each
access, whether in- or out-of Block access, it is possible to omit Env
search overheads." (§III-B6)

The memo is keyed by ``(start block id, relative coordinates of the
requested address with respect to that block's origin)`` — i.e. one
entry per *access site as seen from a block*.  Because Assumption II
says the memory-access pattern is static across iterations, the second
and later iterations resolve almost every access from the memo instead
of searching the Env tree.

MMAT does **not** detect access-pattern changes; end users must call
:meth:`MMAT.reset` when the pattern changes (the annotation library's
warm-up macro does this automatically, matching the paper's
"previously collected information at MMAT is cleared when the warm-up
macro is called").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["MMAT"]


class MMAT:
    """Per-Env memo of memory-access resolutions."""

    __slots__ = ("enabled", "_memo", "hits", "misses", "resets")

    def __init__(self, enabled: bool = False) -> None:
        #: MMAT is opt-in: "end-users can use this function by explicitly
        #: enabling it".
        self.enabled = bool(enabled)
        self._memo: Dict[Tuple[int, Tuple[int, ...]], object] = {}
        self.hits = 0
        self.misses = 0
        self.resets = 0

    # ------------------------------------------------------------------
    def key(self, start_block_id: int, relative: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        return (start_block_id, relative)

    def lookup(self, start_block_id: int, relative: Tuple[int, ...]):
        """Return the memorized target block, or None on a miss."""
        if not self.enabled:
            return None
        block = self._memo.get((start_block_id, relative))
        if block is None:
            self.misses += 1
        else:
            self.hits += 1
        return block

    def remember(self, start_block_id: int, relative: Tuple[int, ...], block) -> None:
        """Memorize that accesses at this site resolve to ``block``."""
        if self.enabled:
            self._memo[(start_block_id, relative)] = block

    def reset(self) -> None:
        """Forget every memorized resolution (access pattern changed)."""
        self._memo.clear()
        self.resets += 1

    def __len__(self) -> int:
        return len(self._memo)

    def memory_bytes(self) -> int:
        """Rough footprint of the memo table (reported in the Fig. 12 bench)."""
        # Key: 2 small ints + tuple overhead; value: pointer.  A compact
        # estimate is sufficient for the memory-usage decomposition.
        return 120 * len(self._memo)

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "entries": len(self._memo),
            "hits": self.hits,
            "misses": self.misses,
            "resets": self.resets,
        }
