"""Global and local addresses.

The paper's Memory Library lets kernels address data either with a
*Global Address* ("represents the entire data area") or with a *Local
Address* ("relative coordinates from the origin of each Block",
§III-B6).  Both are small fixed-dimension integer tuples.

Addresses are deliberately lightweight (plain tuples wrapped in thin
``NamedTuple``-like classes) because kernel inner loops construct one
per data access, exactly as the C++ ``GlobalAddress_t`` / ``LocalAddress_t``
structs do in the paper's Listing 1.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from .errors import AddressError

__all__ = ["GlobalAddress", "LocalAddress", "to_global", "to_local", "offset_in_box"]


class GlobalAddress(tuple):
    """Integer coordinates in the whole computation domain.

    Subclasses ``tuple`` so it hashes/compares like the raw coordinates
    while still being a distinct type for interface clarity.
    """

    __slots__ = ()

    def __new__(cls, coords: Iterable[int]) -> "GlobalAddress":
        coords = tuple(int(c) for c in coords)
        if not coords:
            raise AddressError("GlobalAddress requires at least one coordinate")
        return super().__new__(cls, coords)

    @property
    def ndim(self) -> int:
        return len(self)

    def shifted(self, delta: Sequence[int]) -> "GlobalAddress":
        """Return the address displaced by ``delta`` (same dimensionality)."""
        if len(delta) != len(self):
            raise AddressError(
                f"shift dimensionality mismatch: {len(delta)} vs {len(self)}"
            )
        return GlobalAddress(c + d for c, d in zip(self, delta))

    def __repr__(self) -> str:
        return f"GA{tuple(self)!r}"


class LocalAddress(tuple):
    """Integer coordinates relative to a Block origin."""

    __slots__ = ()

    def __new__(cls, coords: Iterable[int]) -> "LocalAddress":
        coords = tuple(int(c) for c in coords)
        if not coords:
            raise AddressError("LocalAddress requires at least one coordinate")
        return super().__new__(cls, coords)

    @property
    def ndim(self) -> int:
        return len(self)

    def __repr__(self) -> str:
        return f"LA{tuple(self)!r}"


def to_global(origin: Sequence[int], local: Sequence[int]) -> GlobalAddress:
    """Convert a block-relative address to a global address."""
    if len(origin) != len(local):
        raise AddressError(
            f"origin/local dimensionality mismatch: {len(origin)} vs {len(local)}"
        )
    return GlobalAddress(o + l for o, l in zip(origin, local))


def to_local(origin: Sequence[int], global_addr: Sequence[int]) -> LocalAddress:
    """Convert a global address to coordinates relative to ``origin``."""
    if len(origin) != len(global_addr):
        raise AddressError(
            f"origin/global dimensionality mismatch: {len(origin)} vs {len(global_addr)}"
        )
    return LocalAddress(g - o for o, g in zip(origin, global_addr))


def offset_in_box(shape: Sequence[int], local: Sequence[int]) -> int:
    """Row-major linear offset of ``local`` inside a box of extent ``shape``.

    Raises :class:`AddressError` when the coordinate lies outside the box;
    callers rely on this to detect out-of-block accesses.
    """
    if len(shape) != len(local):
        raise AddressError(
            f"shape/local dimensionality mismatch: {len(shape)} vs {len(local)}"
        )
    offset = 0
    for extent, coord in zip(shape, local):
        if coord < 0 or coord >= extent:
            raise AddressError(f"local coordinate {tuple(local)} outside box {tuple(shape)}")
        offset = offset * extent + coord
    return offset


def box_contains(origin: Sequence[int], shape: Sequence[int], addr: Sequence[int]) -> bool:
    """Return True when ``addr`` lies inside the half-open box ``[origin, origin+shape)``."""
    if len(origin) != len(addr):
        return False
    return all(o <= a < o + s for o, s, a in zip(origin, shape, addr))
