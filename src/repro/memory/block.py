"""The Block hierarchy.

"The global structure of the target data is represented by a tree
structure of Blocks (Env).  A Block, which is a unit of data to be
computed by a subkernel, is a fixed-size data structure with dimensions
implemented for each target computation." (§III-B3)

Concrete kinds, mirroring the paper:

=================  ===========================================================
:class:`DataBlock`        entity Block with multi-buffered data; the only kind
                          with a valid ``dm_tid`` and the only kind assigned to
                          tasks for calculation
:class:`EmptyBlock`       joint of the tree (root, grouping nodes)
:class:`BufferOnlyBlock`  buffer for data communicated from other tasks;
                          ``is_valid`` is False until filled on demand
:class:`StaticDataBlock`  provides constant data (USGrid out-of-domain cells)
:class:`ArithmeticBlock`  generates data from an arithmetic expression of the
                          address (Dirichlet boundary conditions, dummy wall
                          particles)
:class:`ReferenceBlock`   redirects accesses to another Block through an
                          address mapping (Neumann boundary conditions)
=================  ===========================================================

Every Block carries its placement information in space (``origin`` and
``shape`` in the global index space) plus the three parameters the
paper lists: ``is_valid``, ``dm_tid`` (data-manage task id) and
``ch_tid`` (calc-handle task id).
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .address import (
    GlobalAddress,
    LocalAddress,
    box_contains,
    offset_in_box,
    to_global,
    to_local,
)
from .buffer import MultiBuffer
from .errors import AddressError, BlockError
from .page import PageKey
from .pool import PoolGroup
from .zorder import morton_encode

__all__ = [
    "Block",
    "DataBlock",
    "BufferOnlyBlock",
    "EmptyBlock",
    "StaticDataBlock",
    "ArithmeticBlock",
    "ReferenceBlock",
]

_block_id_counter = itertools.count(1)


class Block:
    """Base class of all Block kinds."""

    kind = "abstract"

    def __init__(
        self,
        origin: Sequence[int],
        shape: Sequence[int],
        *,
        name: str = "",
    ) -> None:
        if len(origin) != len(shape):
            raise BlockError("origin and shape must have the same dimensionality")
        #: Stable identifier unique within the process; page keys and the
        #: simulated network address blocks by this id.
        self.block_id: int = next(_block_id_counter)
        self.origin: Tuple[int, ...] = tuple(int(c) for c in origin)
        self.shape: Tuple[int, ...] = tuple(int(c) for c in shape)
        self.name = name or f"{self.kind}#{self.block_id}"
        self.parent: Optional["Block"] = None
        self.children: List["Block"] = []
        #: Readability flag (paper: "Indicates if the data is readable").
        self.is_valid: bool = True
        #: Data-manage task id; only Data Blocks have a meaningful value.
        self.dm_tid: Optional[int] = None
        #: Calc-handle task id.
        self.ch_tid: Optional[int] = None

    # -- tree structure -------------------------------------------------
    def add_child(self, child: "Block") -> "Block":
        """Attach ``child`` to this block and return it."""
        if child.parent is not None:
            raise BlockError(f"block {child.name} already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def iter_subtree(self):
        """Yield this block and all descendants (pre-order)."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def siblings(self) -> List["Block"]:
        if self.parent is None:
            return []
        return [c for c in self.parent.children if c is not self]

    # -- spatial queries -------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.origin)

    @property
    def element_count(self) -> int:
        count = 1
        for extent in self.shape:
            count *= extent
        return count

    def contains(self, addr: Sequence[int]) -> bool:
        """True when ``addr`` lies inside this block's own extent."""
        return box_contains(self.origin, self.shape, addr)

    def zorder_index(self) -> int:
        """Morton index of this block's origin (used for task assignment)."""
        # Normalise to block-grid coordinates so indices are small.
        coords = tuple(
            o // s if s > 0 else o for o, s in zip(self.origin, self.shape)
        )
        return morton_encode(tuple(max(c, 0) for c in coords))

    # -- data access (overridden by concrete kinds) ----------------------
    @property
    def holds_data(self) -> bool:
        """True for kinds that can answer read requests."""
        return False

    def read(self, addr: Sequence[int]) -> np.ndarray:
        raise BlockError(f"{self.kind} block {self.name!r} cannot be read")

    def write(self, addr: Sequence[int], value) -> None:
        raise BlockError(f"{self.kind} block {self.name!r} cannot be written")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(id={self.block_id}, origin={self.origin}, "
            f"shape={self.shape}, dm_tid={self.dm_tid}, ch_tid={self.ch_tid})"
        )


class EmptyBlock(Block):
    """A joint of the Env tree.  Holds no data."""

    kind = "empty"

    def __init__(self, origin: Sequence[int] = (0,), shape: Sequence[int] = (0,), **kw) -> None:
        super().__init__(origin, shape, **kw)
        self.is_valid = False

    def contains(self, addr: Sequence[int]) -> bool:
        # A joint never resolves an address itself; search descends into
        # its children instead.
        return False

    def covers(self, addr: Sequence[int]) -> bool:
        """True when the address falls inside any descendant's extent.

        Used by the Env search to decide whether descending into this
        joint can possibly succeed (a cheap bounding-box union).
        """
        return any(
            child.contains(addr) or (isinstance(child, EmptyBlock) and child.covers(addr))
            for child in self.children
        )


class DataBlock(Block):
    """Entity Block with multi-buffered data.

    Parameters
    ----------
    origin, shape:
        Placement of the block in the global index space.
    components:
        Number of scalar components per element (1 for SGrid, 1 for each
        USGrid value, particle buckets pack whole bucket records).
    page_elements:
        Elements per page (the platform's communication granularity).
    allocator:
        Pool (group) the buffers draw chunks from.
    dtype:
        Element dtype, float64 by default.
    depth:
        Multi-buffer depth (2 = double buffering).
    """

    kind = "data"

    def __init__(
        self,
        origin: Sequence[int],
        shape: Sequence[int],
        *,
        components: int,
        page_elements: int,
        allocator: PoolGroup,
        dtype=np.float64,
        depth: int = 2,
        name: str = "",
    ) -> None:
        super().__init__(origin, shape, name=name)
        self.components = int(components)
        self.page_elements = int(page_elements)
        self.buffer = MultiBuffer(
            self.element_count, self.page_elements, self.components, dtype, allocator, depth
        )
        self.dm_tid = 0
        self.ch_tid = 0
        #: Static per-element side data registered by the DSL layer
        #: (e.g. the neighbour tables of the unstructured grid).  Stored
        #: outside the multi-buffer because it never changes per step.
        self.static_fields: dict = {}

    # ------------------------------------------------------------------
    @property
    def holds_data(self) -> bool:
        return True

    def element_index(self, addr: Sequence[int]) -> int:
        """Linear (row-major) index of a *global* address inside this block."""
        local = to_local(self.origin, addr)
        return offset_in_box(self.shape, local)

    def local_element_index(self, local: Sequence[int]) -> int:
        return offset_in_box(self.shape, local)

    # -- element access ---------------------------------------------------
    def read(self, addr: Sequence[int]) -> np.ndarray:
        """Read the element at global address ``addr`` from the read buffer."""
        value = self.buffer.read_buffer.read(self.element_index(addr))
        if self.components == 1:
            return value[0]
        return value

    def read_local(self, local: Sequence[int]):
        value = self.buffer.read_buffer.read(self.local_element_index(local))
        if self.components == 1:
            return value[0]
        return value

    def write(self, addr: Sequence[int], value) -> None:
        """Write the element at global address ``addr`` into the write buffer."""
        self.buffer.write_buffer.write(self.element_index(addr), value)

    def write_local(self, local: Sequence[int], value) -> None:
        self.buffer.write_buffer.write(self.local_element_index(local), value)

    # -- page interface (used by aspect modules) ---------------------------
    def page_count(self) -> int:
        return self.buffer.read_buffer.page_count

    def page_key_of(self, addr: Sequence[int]) -> PageKey:
        """Page key of the page containing global address ``addr``."""
        return PageKey(self.block_id, self.buffer.read_buffer.page_of(self.element_index(addr)))

    def page_snapshot(self, page_index: int) -> np.ndarray:
        """Copy of a read-buffer page (what the owning task sends)."""
        return self.buffer.read_buffer.pages[page_index].snapshot()

    def page_view(self, page_index: int) -> np.ndarray:
        """The read-buffer page's backing array, **without copying**.

        Zero-copy export for transports and checkpoint stores that copy
        the bytes themselves (shared-memory publish, spool pickling).
        The view aliases live pool memory: it is only stable between the
        refresh protocol's synchronisation points, and callers must
        never write through it.
        """
        return self.buffer.read_buffer.pages[page_index].array

    @property
    def content_generation(self) -> int:
        """Monotonic stamp of the read buffer's content (the swap count).

        Owned blocks' read buffers change only at a refresh swap, so an
        unchanged generation means every page still holds the bytes of
        the previous export — the shared-memory arena uses this to serve
        repeat fetches from the same slot without rewriting it.
        """
        return self.buffer.swaps

    def page_fill(self, page_index: int, data: np.ndarray) -> None:
        """Overwrite a read-buffer page (what a receiving task installs)."""
        self.buffer.read_buffer.pages[page_index].fill_from(data)

    def dirty_pages(self) -> List[int]:
        return [p.index for p in self.buffer.read_buffer.pages if p.dirty]

    # -- bulk access --------------------------------------------------------
    def dense(self) -> np.ndarray:
        """Contiguous copy of the read buffer, shaped ``shape + (components,)``."""
        data = self.buffer.read_buffer.dense()
        return data.reshape(self.shape + (self.components,))

    def load_dense(self, data: np.ndarray, *, into_write: bool = False) -> None:
        """Load a contiguous array into the read (or write) buffer."""
        target = self.buffer.write_buffer if into_write else self.buffer.read_buffer
        target.load_dense(np.asarray(data).reshape(self.element_count, self.components))

    def refresh_swap(self) -> None:
        """Swap read/write buffers (performed by ``Env.refresh`` on success)."""
        self.buffer.swap()

    @property
    def nbytes(self) -> int:
        static = sum(arr.nbytes for arr in self.static_fields.values())
        return self.buffer.nbytes + static


class BufferOnlyBlock(DataBlock):
    """Data Block that only acts as a landing buffer for remote data.

    It has storage but no owner responsibility: ``dm_tid`` is None and
    ``is_valid`` starts False; the distributed-memory aspect fills its
    pages on demand and flips validity.
    """

    kind = "buffer_only"

    def __init__(self, *args, owner_tid: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.is_valid = False
        self.dm_tid = None
        self.ch_tid = None
        #: Task id of the rank that owns the authoritative copy.
        self.owner_tid = owner_tid

    def read(self, addr: Sequence[int]) -> np.ndarray:
        index = self.element_index(addr)
        page = self.buffer.read_buffer.pages[self.buffer.read_buffer.page_of(index)]
        if not (self.is_valid or page.valid):
            raise BlockError(
                f"buffer-only block {self.name!r} read before its data arrived "
                f"(page {page.index})"
            )
        return super().read(addr)

    def write(self, addr: Sequence[int], value) -> None:
        raise BlockError("buffer-only blocks are read-only for kernels")

    def invalidate(self) -> None:
        """Mark all pages stale (done at every step boundary)."""
        self.is_valid = False
        for buf in self.buffer.buffers:
            buf.set_valid(False)


class StaticDataBlock(Block):
    """Block providing constant data for every address it covers."""

    kind = "static"

    def __init__(
        self,
        origin: Sequence[int],
        shape: Sequence[int],
        value,
        *,
        components: int = 1,
        name: str = "",
    ) -> None:
        super().__init__(origin, shape, name=name)
        self.components = int(components)
        self._value = np.asarray(value, dtype=np.float64).reshape(-1)
        if self._value.size not in (1, self.components):
            raise BlockError(
                f"static value has {self._value.size} components, expected 1 or {components}"
            )

    @property
    def holds_data(self) -> bool:
        return True

    def read(self, addr: Sequence[int]) -> np.ndarray:
        if not self.contains(addr):
            raise AddressError(f"{addr} outside static block {self.name!r}")
        if self.components == 1:
            return self._value[0]
        if self._value.size == 1:
            return np.full(self.components, self._value[0])
        return self._value.copy()


class ArithmeticBlock(Block):
    """Block generating data from an arithmetic expression of the address.

    Used for Dirichlet boundary conditions and, in the particle DSL, to
    return buckets of dummy wall particles outside the domain.
    """

    kind = "arithmetic"

    def __init__(
        self,
        origin: Sequence[int],
        shape: Sequence[int],
        expression: Callable[[GlobalAddress], np.ndarray],
        *,
        components: int = 1,
        name: str = "",
    ) -> None:
        super().__init__(origin, shape, name=name)
        if not callable(expression):
            raise BlockError("ArithmeticBlock expression must be callable")
        self.expression = expression
        self.components = int(components)

    @property
    def holds_data(self) -> bool:
        return True

    def read(self, addr: Sequence[int]) -> np.ndarray:
        if not self.contains(addr):
            raise AddressError(f"{addr} outside arithmetic block {self.name!r}")
        return self.expression(GlobalAddress(addr))


class ReferenceBlock(Block):
    """Block redirecting accesses to another block through an address map.

    Used for Neumann (mirror) boundary conditions: an address outside
    the domain is mapped to the mirrored interior address and served
    from the referenced block (or from the Env if the mapped address
    belongs to a different block).
    """

    kind = "reference"

    def __init__(
        self,
        origin: Sequence[int],
        shape: Sequence[int],
        mapper: Callable[[GlobalAddress], GlobalAddress],
        target: Optional[Block] = None,
        *,
        name: str = "",
    ) -> None:
        super().__init__(origin, shape, name=name)
        if not callable(mapper):
            raise BlockError("ReferenceBlock mapper must be callable")
        self.mapper = mapper
        self.target = target
        #: Set by the Env when attached so that mapped addresses outside
        #: ``target`` can still be resolved by a full search.
        self.env = None

    @property
    def holds_data(self) -> bool:
        return True

    def read(self, addr: Sequence[int]) -> np.ndarray:
        if not self.contains(addr):
            raise AddressError(f"{addr} outside reference block {self.name!r}")
        mapped = self.mapper(GlobalAddress(addr))
        if self.target is not None and self.target.contains(mapped):
            return self.target.read(mapped)
        if self.env is not None:
            return self.env.read(mapped)
        raise BlockError(
            f"reference block {self.name!r} cannot resolve mapped address {mapped}"
        )
